// LJSP session protocol v1: the framing and handshake the TCP front end
// speaks between FrameSender clients and the FrameServer.
//
// Transport framing (everything little-endian):
//
//   +----------------+--------+----------------------------+
//   | u32 payload_len| u8 type| payload (payload_len bytes)|
//   +----------------+--------+----------------------------+
//
// Session flow:
//
//   client                                server
//     | -- HELLO {magic,ver,k,m,seed,eps} -> |   params must match exactly
//     | <- HELLO_OK {ver,shards,ack_mode} -- |   (else ERROR + close)
//     | -- DATA {LJSB batch envelope} -----> |   ingest into a shard
//     | <- DATA_ACK {code} ---------------- |   (shed mode only; code busy
//     |            ...                       |    means retry the frame)
//     | -- SNAPSHOT ----------------------> |
//     | <- SNAPSHOT_DATA {raw-lane sketch}- |   merged un-finalized lanes
//     | -- BYE ---------------------------> |
//     | <- BYE_OK ------------------------- |   all of this connection's
//     |  close                              |   frames are ingested
//
// A client ending the whole collection sends FINALIZE instead of BYE as
// its last message; FINALIZE_OK carries the same "everything you sent is
// ingested" guarantee (control frames are ordered after the connection's
// DATA), and the server may tear the session down right after confirming.
//
// DATA payloads are exactly the "LJSB" batch-envelope records the in-process
// service ingests (EncodeReportBatch), so the network tier adds framing and
// flow control but never re-encodes reports — which is what makes the TCP
// path bit-identical to in-process ingestion.
#ifndef LDPJS_NET_PROTOCOL_H_
#define LDPJS_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "common/socket.h"
#include "common/status.h"
#include "core/params.h"

namespace ldpjs {

inline constexpr uint32_t kNetMagic = 0x50534A4CU;  // "LJSP" little-endian
inline constexpr uint8_t kNetVersion = 1;

/// Frame types. Client→server: kHello, kData, kSnapshot, kFinalize, kBye,
/// kEpochPush. Server→client: kHelloOk, kDataAck, kSnapshotData,
/// kFinalizeOk, kByeOk, kError, kEpochPushOk.
enum class NetFrameType : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kData = 3,
  kDataAck = 4,
  kSnapshot = 5,
  kSnapshotData = 6,
  /// Payload: empty (anonymous — every request counts), or u32 region_id
  /// (federation: a region's forwarded FINALIZE counts once per region no
  /// matter how many times a retry resends it).
  kFinalize = 7,
  kFinalizeOk = 8,
  kBye = 9,
  kByeOk = 10,
  kError = 11,
  /// Federation: a regional aggregator ships one epoch's raw-lane snapshot
  /// upstream. Payload: u32 region_id, u64 epoch, then the serialized
  /// un-finalized sketch. Ordered after the connection's DATA like the
  /// other non-DATA frames; never shed.
  kEpochPush = 12,
  /// Ack for kEpochPush: one EpochPushAckCode byte. `kDuplicate` makes a
  /// retried push after an ambiguous failure exactly-once — the central
  /// tier dedups on (region_id, epoch) and never double-merges.
  kEpochPushOk = 13,
};

/// Hard cap on client→server frame payloads. A batch envelope is at most
/// 9 + 4096·9 bytes, so anything near this cap is garbage; bounding it
/// keeps a malicious length prefix from making the server allocate.
inline constexpr size_t kMaxIngestFramePayload = 64 * 1024;

/// Cap on server→client payloads (snapshots carry k·m raw i64 lanes).
inline constexpr size_t kMaxControlFramePayload = size_t{256} * 1024 * 1024;

/// DATA_ACK payload (one byte).
enum class DataAckCode : uint8_t {
  kAbsorbed = 0,
  kBusy = 1,  ///< shed by backpressure — retriable
};

/// HELLO payload: the sketch session parameters. The server accepts a
/// connection only if every field matches its own configuration bit for bit
/// (mismatched params would silently poison lanes, never mergeable).
struct SessionHello {
  uint32_t k = 0;
  uint32_t m = 0;
  uint64_t seed = 0;
  double epsilon = 0.0;
};

std::vector<uint8_t> EncodeHello(const SessionHello& hello);
Result<SessionHello> DecodeHello(std::span<const uint8_t> payload);

/// HELLO_OK payload: protocol version echo plus the server's shard count
/// and whether every DATA frame will be acked (shed-mode flow control).
struct SessionHelloOk {
  uint8_t version = kNetVersion;
  uint32_t num_shards = 0;
  bool acked_data = false;
};

std::vector<uint8_t> EncodeHelloOk(const SessionHelloOk& ok);
Result<SessionHelloOk> DecodeHelloOk(std::span<const uint8_t> payload);

/// EPOCH_PUSH_OK payload (one byte).
enum class EpochPushAckCode : uint8_t {
  kApplied = 0,    ///< snapshot merged into the central lanes
  kDuplicate = 1,  ///< (region, epoch) already applied — retry resolved
};

/// EPOCH_PUSH payload header; the serialized raw-lane sketch follows it to
/// the end of the frame (no inner length prefix — the transport frame
/// already delimits it).
struct EpochPush {
  uint32_t region_id = 0;
  uint64_t epoch = 0;
  std::span<const uint8_t> raw_sketch;  ///< zero-copy view into the payload
};

/// Transport bytes an EPOCH_PUSH adds on top of the sketch itself.
inline constexpr size_t kEpochPushHeaderBytes = 12;

std::vector<uint8_t> EncodeEpochPush(uint32_t region_id, uint64_t epoch,
                                     std::span<const uint8_t> raw_sketch);
/// The decoded view borrows `payload` — keep it alive.
Result<EpochPush> DecodeEpochPush(std::span<const uint8_t> payload);

/// Upper bound on a well-formed EPOCH_PUSH payload for `params`-shaped
/// sessions: push header + the measured size of a serialized raw-lane
/// sketch of that shape. Anything larger is garbage, so servers read
/// session frames with max(kMaxIngestFramePayload, this) and a malicious
/// length prefix still cannot make them allocate unboundedly.
size_t EpochPushPayloadBound(const SketchParams& params);

/// ERROR payload: one status-code byte plus the message bytes. The decoded
/// Status is what the failing server-side operation returned, so a client
/// can distinguish a retriable condition from a protocol violation.
std::vector<uint8_t> EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::span<const uint8_t> payload);

/// One parsed transport frame (payload bytes owned).
struct NetFrame {
  NetFrameType type = NetFrameType::kError;
  std::vector<uint8_t> payload;
};

/// Writes one frame (u32 len + u8 type + payload) to the socket.
Status WriteNetFrame(const Socket& socket, NetFrameType type,
                     std::span<const uint8_t> payload);

/// Reads one frame (empty payloads are valid — the control frames carry
/// none). A clean close on a frame boundary returns NotFound (end of
/// session); a close mid-frame, an unknown type, or a payload above
/// `max_payload` returns Corruption without reading further.
Result<NetFrame> ReadNetFrame(const Socket& socket, size_t max_payload);

}  // namespace ldpjs

#endif  // LDPJS_NET_PROTOCOL_H_
