// Fast-AGMS sketch of Cormode & Garofalakis (paper §III-A): a k x m counter
// array where row j uses a bucket hash h_j and a 4-wise independent sign
// hash ξ_j; an update touches one counter per row. This is the non-private
// reference ("FAGMS" in the paper's figures) and the structure that
// LDPJoinSketch privatizes.
#ifndef LDPJS_SKETCH_FAST_AGMS_H_
#define LDPJS_SKETCH_FAST_AGMS_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "data/column.h"

namespace ldpjs {

class FastAgmsSketch {
 public:
  /// Sketch with k rows and m columns. Sketches intended to be joined or
  /// merged must share `seed` (same hash families).
  FastAgmsSketch(uint64_t seed, int k, int m);

  /// Adds `weight` occurrences of value d: row j gets weight*ξ_j(d) at
  /// column h_j(d).
  void Update(uint64_t d, double weight = 1.0);

  /// Summarizes a whole column.
  void UpdateColumn(const Column& column);

  /// Join-size estimate (Eq. 1): median over rows of the row inner products.
  double JoinEstimate(const FastAgmsSketch& other) const;

  /// Frequency estimate of d: median over rows of M[j, h_j(d)]*ξ_j(d).
  double FrequencyEstimate(uint64_t d) const;

  /// Self-join (F2) estimate.
  double SecondMomentEstimate() const;

  /// Adds other's counters into this sketch (distributed merge). Requires
  /// identical shape and seed.
  void Merge(const FastAgmsSketch& other);

  int k() const { return k_; }
  int m() const { return m_; }
  uint64_t seed() const { return seed_; }
  double cell(int row, int col) const {
    return cells_[static_cast<size_t>(row) * static_cast<size_t>(m_) +
                  static_cast<size_t>(col)];
  }
  const std::vector<RowHashes>& row_hashes() const { return rows_; }

  /// Serialized byte size (used by the space-cost bench, Fig. 6).
  size_t ByteSize() const;

 private:
  uint64_t seed_;
  int k_;
  int m_;
  std::vector<RowHashes> rows_;
  std::vector<double> cells_;  // row-major k x m
};

}  // namespace ldpjs

#endif  // LDPJS_SKETCH_FAST_AGMS_H_
