// Hash families used by the sketches.
//
// The AGMS analysis (paper §III-A) needs a 4-wise independent ±1 family ξ and
// a (at least pairwise independent) bucket family h. Both are implemented as
// polynomial hashing over the Mersenne prime p = 2^61 - 1: a degree-(t-1)
// polynomial with coefficients drawn uniformly from [0, p) is exactly t-wise
// independent on inputs < p.
//
// TabulationHash is provided as a fast 3-wise-independent alternative used by
// the OLH/FLH baselines where full 4-wise independence is not required.
#ifndef LDPJS_COMMON_HASH_H_
#define LDPJS_COMMON_HASH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ldpjs {

/// The Mersenne prime 2^61 - 1 used as the field modulus.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

namespace internal {

/// (a * b) mod (2^61 - 1) without overflow, via 128-bit intermediate.
inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t s = lo + hi;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// (a + b) mod (2^61 - 1); requires a, b < 2^61 - 1.
inline uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// Lazy Mersenne fold: for v < 2^124 returns a value ≡ v (mod 2^61 - 1)
/// bounded by 2^61 + 5 — congruent but not canonical, so chains of folds
/// avoid the compare-and-subtract per step. (Callers stay below the domain:
/// the largest product formed is ~(2^62)·(2^61+6) < 2^124.)
inline uint64_t FoldMod61(__uint128_t v) {
  const uint64_t s = (static_cast<uint64_t>(v) & kMersenne61) +
                     static_cast<uint64_t>(v >> 61);
  return (s & kMersenne61) + (s >> 61);
}

}  // namespace internal

/// Degree-(t-1) polynomial over GF(2^61 - 1): a t-wise independent family.
/// Evaluation is Horner's rule, O(t) multiplications — defined inline
/// because it sits on the per-report client hot path.
class PolynomialHash {
 public:
  /// Draws `degree_plus_one` coefficients from the stream seeded by `seed`.
  /// `degree_plus_one` == t gives t-wise independence. The leading coefficient
  /// is forced non-zero so the polynomial has full degree.
  PolynomialHash(uint64_t seed, int degree_plus_one);

  /// Evaluates the polynomial at x (reduced mod p first). Result in [0, p).
  /// Identical values to the canonical Horner evaluation; the degree-3
  /// (4-wise) case — the sign-hash workhorse — uses an Estrin split with
  /// lazy Mersenne folds, which halves the serial multiply chain.
  uint64_t operator()(uint64_t x) const {
    const uint64_t xr = (x & kMersenne61) + (x >> 61);  // ≡ x (mod p)
    uint64_t acc;
    if (coeffs_.size() == 4) {
      // (c0·x + c1)·x² + (c2·x + c3): the three products are independent,
      // so the chain is two multiplies deep instead of three.
      const uint64_t a =
          internal::FoldMod61(static_cast<__uint128_t>(coeffs_[0]) * xr) +
          coeffs_[1];
      const uint64_t b =
          internal::FoldMod61(static_cast<__uint128_t>(coeffs_[2]) * xr) +
          coeffs_[3];
      const uint64_t x2 =
          internal::FoldMod61(static_cast<__uint128_t>(xr) * xr);
      acc = internal::FoldMod61(static_cast<__uint128_t>(a) * x2) + b;
    } else {
      acc = coeffs_[0];
      for (size_t i = 1; i < coeffs_.size(); ++i) {
        acc = internal::FoldMod61(static_cast<__uint128_t>(acc) * xr) +
              coeffs_[i];
      }
    }
    acc = (acc & kMersenne61) + (acc >> 61);
    if (acc >= kMersenne61) acc -= kMersenne61;
    return acc;
  }

  int independence() const { return static_cast<int>(coeffs_.size()); }

  /// Coefficients, leading first (for callers that inline the evaluation).
  const std::vector<uint64_t>& coeffs() const { return coeffs_; }

 private:
  std::vector<uint64_t> coeffs_;  // coeffs_[0] is the leading coefficient.
};

class TabulationHash;  // forward declaration, defined below

/// Bucket hash h : U -> [0, m), 3-wise independent via simple tabulation
/// plus multiply-shift reduction. m need not be a power of two, but must be
/// <= 2^32.
///
/// Tabulation (rather than an affine polynomial over GF(p)) matters for real
/// workloads: sequential keys under an affine hash form an arithmetic
/// progression whose bucket collisions are lattice-structured — per-seed
/// collision counts are heavy-tailed instead of binomial. Tabulation behaves
/// like a random function on such inputs (Pătraşcu & Thorup).
///
/// Table entries are 32-bit: sketch widths are far below 2^32, so the
/// multiply-shift bias O(m / 2^32) is negligible, and the 8 KiB table (vs
/// 16 KiB with 64-bit entries) keeps the k per-row tables of a sketch
/// L2-resident on the client hot path.
class BucketHash {
 public:
  /// `m` is the number of buckets; requires 1 <= m <= 2^32.
  BucketHash(uint64_t seed, uint64_t m);

  /// Bucket index in [0, m). Inline: per-report client hot path.
  uint64_t operator()(uint64_t x) const {
    uint32_t h = 0;
    for (size_t byte = 0; byte < 8; ++byte) {
      h ^= tables_[byte][(x >> (8 * byte)) & 0xff];
    }
    // Multiply-shift reduction onto [0, m): unbiased up to O(m / 2^32).
    return (static_cast<uint64_t>(h) * m_) >> 32;
  }

  uint64_t num_buckets() const { return m_; }

 private:
  std::array<std::array<uint32_t, 256>, 8> tables_;
  uint64_t m_;
};

/// 4-wise independent sign hash ξ : U -> {-1, +1} (paper notation ξ_j).
/// Implemented as the parity of a high bit of a degree-3 polynomial.
class SignHash {
 public:
  explicit SignHash(uint64_t seed);

  /// +1 or -1. Inline: per-report client hot path. Same Estrin/lazy-fold
  /// evaluation as PolynomialHash, on coefficients held in-object so the
  /// hot loop dereferences no heap pointer.
  int operator()(uint64_t x) const {
    const uint64_t xr = (x & kMersenne61) + (x >> 61);  // ≡ x (mod p)
    const uint64_t a =
        internal::FoldMod61(static_cast<__uint128_t>(c_[0]) * xr) + c_[1];
    const uint64_t b =
        internal::FoldMod61(static_cast<__uint128_t>(c_[2]) * xr) + c_[3];
    const uint64_t x2 = internal::FoldMod61(static_cast<__uint128_t>(xr) * xr);
    uint64_t acc = internal::FoldMod61(static_cast<__uint128_t>(a) * x2) + b;
    acc = (acc & kMersenne61) + (acc >> 61);
    if (acc >= kMersenne61) acc -= kMersenne61;
    // Use a mid bit of the 4-wise independent value as the sign bit.
    return (acc >> 30) & 1 ? +1 : -1;
  }

 private:
  std::array<uint64_t, 4> c_;  // degree-3 polynomial, leading first
};

/// A (h_j, ξ_j) pair for one sketch row, as used by Fast-AGMS (paper §III-A).
struct RowHashes {
  BucketHash bucket;
  SignHash sign;
};

/// Builds the k per-row hash pairs {(h_0, ξ_0), ..., (h_{k-1}, ξ_{k-1})}
/// deterministically from `seed`. All sketches that must be mergeable /
/// comparable (e.g. M_A and M_B for a join) must be built from the same seed.
std::vector<RowHashes> MakeRowHashes(uint64_t seed, int k, uint64_t m);

/// Simple tabulation hashing on the 8 bytes of the key: 3-wise independent,
/// very fast. Output is a full 64-bit value; reduce with NextBounded-style
/// multiply-shift if a range is needed.
class TabulationHash {
 public:
  explicit TabulationHash(uint64_t seed);

  uint64_t operator()(uint64_t x) const {
    uint64_t h = 0;
    for (size_t byte = 0; byte < 8; ++byte) {
      h ^= tables_[byte][(x >> (8 * byte)) & 0xff];
    }
    return h;
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_HASH_H_
