// Deterministic, fast pseudo-random generators.
//
// SplitMix64 seeds and derives independent streams; Xoshiro256++ is the
// general-purpose engine (satisfies UniformRandomBitGenerator, so it plugs
// into <random> distributions). Every randomized component in the library
// takes an explicit seed so that runs are reproducible.
#ifndef LDPJS_COMMON_RANDOM_H_
#define LDPJS_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace ldpjs {

/// One step of the SplitMix64 sequence starting at `x`; updates `x`.
/// Good avalanche properties; used for seeding and stream derivation.
uint64_t SplitMix64Next(uint64_t& x);

/// Stateless mix: maps x to a well-distributed 64-bit value (SplitMix64
/// finalizer).
uint64_t Mix64(uint64_t x);

/// Derives the seed of substream `index` of the run identified by
/// `run_seed`. Streams of different runs are decorrelated even when the
/// run seeds differ only by a small constant: naive Mix64(seed ^ index)
/// evaluates the finalizer at constant-XOR input pairs across runs, whose
/// outputs correlate enough to bias cross-sketch inner products by several
/// percent (observed; see DESIGN.md). This derivation first randomizes the
/// run offset, then walks a Weyl sequence from it — the access pattern
/// SplitMix64 is designed for.
uint64_t DeriveStreamSeed(uint64_t run_seed, uint64_t index);

/// Xoshiro256++ engine (Blackman & Vigna). Period 2^256 - 1.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Xoshiro256(uint64_t seed = 0xdeadbeefcafef00dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller (caches the second deviate).
  double NextGaussian();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_RANDOM_H_
