// Fig. 14: frequency-estimation MSE vs eps on Zipf(1.5) and MovieLens for
// k-RR, Apple-HCMS, FLH and LDPJoinSketch. Expected shape: LDPJoinSketch
// matches Apple-HCMS (near-identical sketch structure), is better at small
// eps, and both flatten once sketch error dominates; k-RR collapses on the
// large domain.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/simulation.h"
#include "data/join.h"
#include "ldp/hcms.h"
#include "ldp/krr.h"
#include "ldp/olh.h"

using namespace ldpjs;
using namespace ldpjs::bench;

namespace {

std::vector<double> TrueFrequencies(const Column& column) {
  std::vector<double> out(column.domain());
  const auto freq = column.Frequencies();
  for (size_t d = 0; d < freq.size(); ++d) out[d] = static_cast<double>(freq[d]);
  return out;
}

}  // namespace

int main() {
  std::printf("== Fig. 14: frequency estimation MSE vs eps, k=18, m=1024 "
              "==\n\n");
  struct Workload {
    DatasetId id;
    double zipf_alpha;
    uint64_t domain_override;  // 0 = spec domain
  };
  // Zipf frequency sweep uses a reduced domain so the k-RR estimator stays
  // tractable across the eps sweep; MovieLens uses its Table-II domain.
  const Workload workloads[] = {{DatasetId::kZipf, 1.5, 200'000},
                                {DatasetId::kMovieLens, 0, 0}};

  for (const Workload& workload : workloads) {
    const DatasetSpec spec = GetDatasetSpec(workload.id);
    const uint64_t domain =
        workload.domain_override ? workload.domain_override : spec.domain;
    const uint64_t rows = std::min<uint64_t>(ScaledRows(spec.paper_rows),
                                             1'000'000);
    const JoinWorkload w =
        (workload.zipf_alpha > 0)
            ? MakeZipfWorkload(workload.zipf_alpha, domain, rows, 73)
            : MakeWorkload(workload.id, rows, 73);
    const std::vector<double> truth = TrueFrequencies(w.table_a);
    std::printf("-- dataset %s (domain=%llu, rows=%llu) --\n", w.name.c_str(),
                static_cast<unsigned long long>(domain),
                static_cast<unsigned long long>(rows));
    PrintTableHeader({"eps", "method", "MSE"});
    for (double eps : {0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
      // k-RR.
      {
        const auto est = KrrEstimateFrequencies(w.table_a, eps, 101);
        PrintTableRow({Fixed(eps, 1), "k-RR",
                       Sci(MeanSquaredError(truth, est))});
      }
      // Apple-HCMS.
      {
        HcmsParams params;
        params.epsilon = eps;
        params.k = 18;
        params.m = 1024;
        params.seed = 79;
        const auto est = HcmsEstimateFrequencies(w.table_a, params, 103);
        PrintTableRow({Fixed(eps, 1), "Apple-HCMS",
                       Sci(MeanSquaredError(truth, est))});
      }
      // FLH.
      {
        FlhParams params;
        params.epsilon = eps;
        params.pool_size = 128;
        params.seed = 83;
        const auto est = FlhEstimateFrequencies(w.table_a, params, 107);
        PrintTableRow({Fixed(eps, 1), "FLH",
                       Sci(MeanSquaredError(truth, est))});
      }
      // LDPJoinSketch (Theorem 7 estimator).
      {
        SketchParams params;
        params.k = 18;
        params.m = 1024;
        params.seed = 89;
        SimulationOptions sim;
        sim.run_seed = 109;
        const LdpJoinSketchServer server =
            BuildLdpJoinSketch(w.table_a, params, eps, sim);
        const auto est = server.EstimateAllFrequencies(domain);
        PrintTableRow({Fixed(eps, 1), "LDPJoinSketch",
                       Sci(MeanSquaredError(truth, est))});
      }
    }
    std::printf("\n");
  }
  std::printf("shape check: LDPJoinSketch ≈ Apple-HCMS, best at small eps; "
              "curves flatten at large eps (sketch error dominates).\n");
  return 0;
}
