#include "core/fap.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/hadamard.h"
#include "core/simulation.h"
#include "data/column.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 8, int m = 128) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = 33;
  return params;
}

TEST(FapTest, TargetClassificationFollowsMode) {
  const std::unordered_set<uint64_t> fi{1, 2, 3};
  FapClient high(TestParams(), 2.0, FapMode::kHigh, fi);
  FapClient low(TestParams(), 2.0, FapMode::kLow, fi);
  EXPECT_TRUE(high.IsTarget(1));
  EXPECT_FALSE(high.IsTarget(9));
  EXPECT_FALSE(low.IsTarget(1));
  EXPECT_TRUE(low.IsTarget(9));
}

TEST(FapTest, TargetPathMatchesLdpJoinSketchClient) {
  // Algorithm 4 line 10: target values must go through the exact
  // LDPJoinSketch client, bit for bit.
  const SketchParams params = TestParams();
  const std::unordered_set<uint64_t> fi{5, 6};
  FapClient fap(params, 2.0, FapMode::kHigh, fi);
  LdpJoinSketchClient plain(params, 2.0);
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Xoshiro256 rng_fap(seed), rng_plain(seed);
    const LdpReport a = fap.Perturb(5, rng_fap);
    const LdpReport b = plain.Perturb(5, rng_plain);
    ASSERT_EQ(a.j, b.j);
    ASSERT_EQ(a.l, b.l);
    ASSERT_EQ(a.y, b.y);
  }
}

TEST(FapTest, NonTargetEncodingIgnoresValue) {
  // Non-target reports must be independent of the private value: same RNG
  // stream, different values → identical report.
  const std::unordered_set<uint64_t> fi{1};
  FapClient fap(TestParams(), 2.0, FapMode::kHigh, fi);  // non-FI = non-target
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Xoshiro256 rng_a(seed), rng_b(seed);
    const LdpReport a = fap.Perturb(100 + seed, rng_a);
    const LdpReport b = fap.Perturb(5000 + seed, rng_b);
    ASSERT_EQ(a.j, b.j);
    ASSERT_EQ(a.l, b.l);
    ASSERT_EQ(a.y, b.y);
  }
}

TEST(FapTest, TheoremEightNonTargetMassSpreadsUniformly) {
  // A sketch built from only non-target reports has E[cell] = n/m after
  // finalize, independent of which values the users held. The per-cell
  // sampling noise has std c_eps * sqrt(n*k) (each report adds k*c_eps*y to
  // one raw coordinate, which the row transform spreads with +-1 signs), so
  // we check the global mean tightly and each cell within 5 sigma.
  const SketchParams params = TestParams(4, 64);
  const size_t n = 400000;
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = i % 7;  // all in FI
  Column column(std::move(values), 10);
  const std::unordered_set<uint64_t> fi{0, 1, 2, 3, 4, 5, 6};
  SimulationOptions sim;
  sim.run_seed = 3;
  // mode kLow → FI values are non-target.
  const double eps = 2.0;
  const LdpJoinSketchServer server =
      BuildFapSketch(column, params, eps, FapMode::kLow, fi, sim);
  const double expected = static_cast<double>(n) / params.m;
  const double sigma =
      DebiasFactor(eps) * std::sqrt(static_cast<double>(n) * params.k);
  double mean = 0.0;
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      mean += server.cell(j, x);
      EXPECT_NEAR(server.cell(j, x), expected, 5.0 * sigma)
          << "cell (" << j << "," << x << ")";
    }
  }
  mean /= static_cast<double>(params.k) * static_cast<double>(params.m);
  EXPECT_NEAR(mean / expected, 1.0, 0.05);
}

TEST(FapTest, SubtractingNonTargetMassRecoversTargets) {
  // Mixed population: targets (non-FI) plus non-targets (FI). After
  // removing |NT|/m per cell, the frequency estimate of a target value must
  // match its true count.
  const SketchParams params = TestParams(8, 256);
  const size_t n_target = 120000, n_nontarget = 200000;
  std::vector<uint64_t> values;
  values.reserve(n_target + n_nontarget);
  for (size_t i = 0; i < n_target; ++i) values.push_back(50);  // target
  for (size_t i = 0; i < n_nontarget; ++i) values.push_back(1);  // in FI
  Column column(std::move(values), 100);
  const std::unordered_set<uint64_t> fi{1};
  SimulationOptions sim;
  sim.run_seed = 5;
  LdpJoinSketchServer server =
      BuildFapSketch(column, params, 2.0, FapMode::kLow, fi, sim);
  server.SubtractUniformMass(static_cast<double>(n_nontarget));
  EXPECT_NEAR(server.FrequencyEstimate(50) / static_cast<double>(n_target),
              1.0, 0.1);
  // The non-target value's own frequency is gone (its reports carried no
  // information about it).
  EXPECT_NEAR(server.FrequencyEstimate(1) / static_cast<double>(n_nontarget),
              0.0, 0.1);
}

TEST(FapTest, SatisfiesEpsilonLdpAcrossTargetAndNonTarget) {
  // Theorem 6: outputs of a target and a non-target value must be
  // indistinguishable beyond e^ε. Both paths emit y = ±(possibly flipped)
  // deterministic sign, so for any (y, j, l) the ratio is at most
  // p/(1-p) = e^ε. Verify empirically over the full output space.
  const double eps = 1.0;
  const SketchParams params = TestParams(2, 8);
  const std::unordered_set<uint64_t> fi{1};
  FapClient fap(params, eps, FapMode::kHigh, fi);
  const uint64_t target = 1, non_target = 7;
  // Count empirical output distribution over (y, j, l).
  auto histogram = [&](uint64_t value) {
    std::vector<double> hist(2 * 2 * 8, 0.0);
    const int n = 400000;
    Xoshiro256 rng(11);
    for (int i = 0; i < n; ++i) {
      const LdpReport r = fap.Perturb(value, rng);
      const size_t idx = (static_cast<size_t>(r.y > 0) * 2 + r.j) * 8 + r.l;
      hist[idx] += 1.0 / n;
    }
    return hist;
  };
  const auto h_target = histogram(target);
  const auto h_non = histogram(non_target);
  for (size_t i = 0; i < h_target.size(); ++i) {
    if (h_target[i] < 1e-4 || h_non[i] < 1e-4) continue;
    const double ratio = h_target[i] / h_non[i];
    EXPECT_LE(ratio, std::exp(eps) * 1.15) << "output " << i;
    EXPECT_GE(ratio, std::exp(-eps) / 1.15) << "output " << i;
  }
}

TEST(FapTest, EmptyFrequentItemsMakesEverythingTargetInLowMode) {
  FapClient low(TestParams(), 2.0, FapMode::kLow, {});
  FapClient high(TestParams(), 2.0, FapMode::kHigh, {});
  EXPECT_TRUE(low.IsTarget(42));
  EXPECT_FALSE(high.IsTarget(42));
}

}  // namespace
}  // namespace ldpjs
