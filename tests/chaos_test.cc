// Chaos-readiness of the wire stack: deterministic fault injection, the
// jittered-backoff retry machinery, idle-connection reaping, and the
// scenario harness that sweeps fault schedules over a 2-region federated
// run. The acceptance bar everywhere is the repo's north star under
// fire: injected drops, delays, torn writes, corrupt frames, and
// disconnects may delay data and burn retries, but the federated
// estimate — full-history and windowed — stays bit-identical to a
// single node absorbing every report, and the same fault seed replays
// the same faults and the same counters, bit-exactly.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/crc32c.h"
#include "common/fault_injector.h"
#include "common/random.h"
#include "core/ldp_join_sketch.h"
#include "federation/central_node.h"
#include "federation/chaos_harness.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 21) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

// ---- CRC32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectorAndChaining) {
  // The canonical CRC-32C check vector.
  const std::string check = "123456789";
  const auto bytes = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(check.data()), check.size());
  EXPECT_EQ(Crc32c(bytes), 0xE3069283u);
  // Chaining a split buffer equals one pass over the whole.
  const uint32_t head = Crc32c(bytes.subspan(0, 4));
  EXPECT_EQ(Crc32c(bytes.subspan(4), head), Crc32c(bytes));
}

// ---- Backoff --------------------------------------------------------------

TEST(BackoffTest, DeterministicJitterWithinBounds) {
  BackoffOptions options;
  options.base_micros = 100;
  options.cap_micros = 5000;
  options.seed = 99;
  Backoff a(options);
  Backoff b(options);
  EXPECT_EQ(a.Next().count(), options.base_micros);  // first wait is base
  EXPECT_EQ(b.Next().count(), options.base_micros);
  for (int i = 0; i < 64; ++i) {
    const int64_t wait = a.Next().count();
    EXPECT_EQ(wait, b.Next().count());  // same seed, same sequence
    EXPECT_GE(wait, options.base_micros);
    EXPECT_LE(wait, options.cap_micros);
  }
  a.Reset();
  EXPECT_EQ(a.Next().count(), options.base_micros);  // Reset restarts ramp
}

// ---- FaultInjector --------------------------------------------------------

TEST(FaultInjectorTest, SeededScheduleReplaysBitExact) {
  const std::vector<std::string> sites = {"r0.up.send", "r0.up.recv",
                                          "r0.up.connect", "r1.up.send"};
  FaultInjector first(/*seed=*/7, /*rate=*/0.5, /*max_faults=*/1000);
  FaultInjector second(/*seed=*/7, /*rate=*/0.5, /*max_faults=*/1000);
  for (int round = 0; round < 50; ++round) {
    for (const std::string& site : sites) {
      const FaultAction a = first.Next(site);
      const FaultAction b = second.Next(site);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.param, b.param);
    }
  }
  EXPECT_GT(first.total_injected(), 0u);
  EXPECT_EQ(first.total_injected(), second.total_injected());
  EXPECT_EQ(first.StatsString(), second.StatsString());

  // A different seed yields a different schedule (the stats line is the
  // canonical fingerprint).
  FaultInjector other(/*seed=*/8, /*rate=*/0.5, /*max_faults=*/1000);
  for (int round = 0; round < 50; ++round) {
    for (const std::string& site : sites) other.Next(site);
  }
  EXPECT_NE(other.StatsString(), first.StatsString());
}

TEST(FaultInjectorTest, RulesFireAtTheExactHit) {
  FaultInjector injector;  // no seeded schedule
  injector.AddRule("x.send", /*hit=*/2, FaultKind::kDisconnect);
  EXPECT_EQ(injector.Next("x.send").kind, FaultKind::kNone);
  EXPECT_EQ(injector.Next("x.send").kind, FaultKind::kNone);
  EXPECT_EQ(injector.Next("x.send").kind, FaultKind::kDisconnect);
  EXPECT_EQ(injector.Next("x.send").kind, FaultKind::kNone);
  EXPECT_EQ(injector.total_hits(), 4u);
  EXPECT_EQ(injector.total_injected(), 1u);
}

TEST(FaultInjectorTest, MaxFaultsCapsTheSchedule) {
  FaultInjector injector(/*seed=*/3, /*rate=*/1.0, /*max_faults=*/3);
  uint64_t fired = 0;
  for (int i = 0; i < 20; ++i) {
    if (injector.Next("y.send").kind != FaultKind::kNone) ++fired;
  }
  EXPECT_EQ(fired, 3u);  // rate 1.0 would fire every hit; the cap holds
  EXPECT_EQ(injector.total_injected(), 3u);
}

TEST(FaultInjectorTest, SiteSuffixConstrainsKindsAndCorruptStaysInHeader) {
  FaultInjector injector(/*seed=*/5, /*rate=*/1.0, /*max_faults=*/10000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(injector.Next("a.connect").kind, FaultKind::kRefuseConnect);
    const FaultAction recv = injector.Next("a.recv");
    EXPECT_TRUE(recv.kind == FaultKind::kDelay ||
                recv.kind == FaultKind::kDisconnect);
    const FaultAction send = injector.Next("a.send");
    if (send.kind == FaultKind::kCorrupt) {
      // Scheduled corruption is confined to the 5-byte transport header,
      // where the peer's framing layer always detects it — a flipped
      // sketch-lane byte would merge silently and break bit-identity.
      EXPECT_LT(send.param, 5u);
    }
    if (send.kind == FaultKind::kDelay || recv.kind == FaultKind::kDelay) {
      const FaultAction& delay =
          send.kind == FaultKind::kDelay ? send : recv;
      EXPECT_GE(delay.param, 1u);
      EXPECT_LE(delay.param, 4u);
    }
  }
}

// ---- Chaos scenarios ------------------------------------------------------

ChaosScenarioOptions SmallScenario(uint64_t fault_seed, double rate) {
  ChaosScenarioOptions options;
  options.params = TestParams();
  options.epsilon = 2.0;
  options.fault_seed = fault_seed;
  options.fault_rate = rate;
  options.max_faults = 4;
  options.num_regions = 2;
  options.epochs = 2;
  options.reports_per_epoch = 800;
  return options;
}

// The fault-free control run: everything the chaos plumbing adds (site
// labels, timeouts, backoff state, the windowed comparison path) must be
// inert when nothing fails.
TEST(ChaosScenarioTest, FaultFreeControlRunIsCleanAndRetryFree) {
  auto result = RunChaosScenario(SmallScenario(/*fault_seed=*/1, /*rate=*/0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->bit_identical());
  EXPECT_EQ(result->faults_injected, 0u);
  EXPECT_EQ(result->ship_retries, 0u);
  EXPECT_EQ(result->duplicate_acks, 0u);
  EXPECT_EQ(result->backoff_millis, 0u);
  EXPECT_GT(result->fault_hits, 0u);  // the sites were exercised
  EXPECT_EQ(result->total_reports, 2u * 2u * 800u);
}

// The sweep: several seeded fault schedules, each run twice. Every run
// must deliver bit-identity (nothing lost, nothing doubled, windowed ==
// full == direct), and the second run of a seed must replay the first's
// faults and retries exactly.
TEST(ChaosScenarioTest, FaultScheduleSweepBitIdenticalAndReplaysFromSeed) {
  for (const uint64_t seed : {uint64_t{11}, uint64_t{23}}) {
    const ChaosScenarioOptions options = SmallScenario(seed, /*rate=*/0.2);
    auto first = RunChaosScenario(options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_TRUE(first->bit_identical()) << "seed=" << seed;
    EXPECT_GT(first->faults_injected, 0u) << "seed=" << seed;
    EXPECT_GT(first->ship_retries, 0u) << "seed=" << seed;

    auto replay = RunChaosScenario(options);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(replay->bit_identical()) << "seed=" << seed;
    // The replay assertion: same seed, same faults, same counters — the
    // whole failure interleaving is reproducible from one integer.
    EXPECT_EQ(replay->fault_stats, first->fault_stats) << "seed=" << seed;
    EXPECT_EQ(replay->fault_hits, first->fault_hits);
    EXPECT_EQ(replay->faults_injected, first->faults_injected);
    EXPECT_EQ(replay->ship_retries, first->ship_retries);
    EXPECT_EQ(replay->duplicate_acks, first->duplicate_acks);
    EXPECT_EQ(replay->federated, first->federated);
  }
}

// Durable spooling composes with chaos: the same sweep invariants hold
// when every cut is write-ahead logged, and the spool drains to empty
// as the faults are retried through.
TEST(ChaosScenarioTest, SpooledRunSurvivesFaultScheduleBitIdentical) {
  ChaosScenarioOptions options = SmallScenario(/*fault_seed=*/37,
                                               /*rate=*/0.2);
  options.max_faults = 6;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ldpjs_chaos_spool";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  options.spool_dir = dir.string();
  auto result = RunChaosScenario(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->bit_identical());
  EXPECT_GT(result->faults_injected, 0u);
  EXPECT_GT(result->spool_bytes_written, 0u);
  EXPECT_EQ(result->spool_errors, 0u);
  // Everything shipped: both regions' spools compacted to bare headers.
  for (int region = 0; region < 2; ++region) {
    EXPECT_EQ(std::filesystem::file_size(
                  dir / ("region-" + std::to_string(region) + ".spool")),
              16u)
        << "region " << region;
  }
}

// A corrupt transport header on an EPOCH_PUSH must be rejected by the
// central's framing layer before touching a lane — never silently
// merged — and the retry on a fresh session lands exactly once. This is
// the targeted version of what the seeded sweep relies on: injected
// corruption is always detectable.
TEST(ChaosScenarioTest, CorruptPushHeaderRejectedThenRetriedExactlyOnce) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  std::vector<uint64_t> values(400);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i % 50;
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(44);
  client.PerturbBatch(values, reports, rng);
  LdpJoinSketchServer epoch_sketch(params, epsilon);
  epoch_sketch.AbsorbBatch(reports);
  const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();

  FaultInjector injector;
  // Hit 0 on ".send" is the HELLO; hit 1 is the EPOCH_PUSH. Flip the
  // frame type byte (header index 4).
  injector.AddRule("cor.up.send", /*hit=*/1, FaultKind::kCorrupt,
                   /*param=*/4);
  ScopedFaultInjection scope(&injector);

  CentralNodeOptions central_options;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  FrameSender::Options sender_options;
  sender_options.fault_site = "cor.up";
  sender_options.recv_timeout_seconds = 1;
  {
    auto sender = FrameSender::Connect("127.0.0.1", central.port(), params,
                                       epsilon, sender_options);
    ASSERT_TRUE(sender.ok());
    auto pushed = sender->PushEpochSnapshot(1, 0, snapshot);
    EXPECT_FALSE(pushed.ok());  // detected, not merged
  }
  {  // The retry (same region, same epoch) on a fresh session.
    auto sender = FrameSender::Connect("127.0.0.1", central.port(), params,
                                       epsilon, sender_options);
    ASSERT_TRUE(sender.ok());
    auto pushed = sender->PushEpochSnapshot(1, 0, snapshot);
    ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
    EXPECT_EQ(pushed->code, EpochPushAckCode::kApplied);
    ASSERT_TRUE(sender->Finish().ok());
  }
  central.Stop();
  const NetMetrics metrics = central.metrics();
  EXPECT_GE(metrics.corrupt_frames_rejected, 1u);
  ASSERT_EQ(metrics.regions.size(), 1u);
  EXPECT_EQ(metrics.regions[0].epochs_applied, 1u);  // exactly once
  LdpJoinSketchServer federated = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  EXPECT_EQ(federated.Serialize(), direct.Serialize());
}

// A silently dropped EPOCH_PUSH (bytes vanish, connection stays up) is
// the fault only a receive deadline can turn into progress: the sender
// times out waiting for the ack instead of hanging forever, and the
// retry delivers exactly once.
TEST(ChaosScenarioTest, DroppedPushHitsRecvDeadlineThenRetriesExactlyOnce) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  std::vector<uint64_t> values(300);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i % 40;
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(45);
  client.PerturbBatch(values, reports, rng);
  LdpJoinSketchServer epoch_sketch(params, epsilon);
  epoch_sketch.AbsorbBatch(reports);
  const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();

  FaultInjector injector;
  injector.AddRule("drop.up.send", /*hit=*/1, FaultKind::kDrop);
  ScopedFaultInjection scope(&injector);

  CentralNodeOptions central_options;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  FrameSender::Options sender_options;
  sender_options.fault_site = "drop.up";
  sender_options.recv_timeout_seconds = 1;
  {
    auto sender = FrameSender::Connect("127.0.0.1", central.port(), params,
                                       epsilon, sender_options);
    ASSERT_TRUE(sender.ok());
    auto pushed = sender->PushEpochSnapshot(2, 0, snapshot);
    ASSERT_FALSE(pushed.ok());
    // The deadline fired — a dropped frame is a retry, not a deadlock.
    EXPECT_EQ(pushed.status().code(), StatusCode::kDeadlineExceeded);
  }
  {
    auto sender = FrameSender::Connect("127.0.0.1", central.port(), params,
                                       epsilon, sender_options);
    ASSERT_TRUE(sender.ok());
    auto pushed = sender->PushEpochSnapshot(2, 0, snapshot);
    ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
    EXPECT_EQ(pushed->code, EpochPushAckCode::kApplied);
    ASSERT_TRUE(sender->Finish().ok());
  }
  central.Stop();
  ASSERT_EQ(central.metrics().regions.size(), 1u);
  EXPECT_EQ(central.metrics().regions[0].epochs_applied, 1u);
  LdpJoinSketchServer federated = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  EXPECT_EQ(federated.Serialize(), direct.Serialize());
}

// A straggling region must hold the aligned frontier back (never skew
// the window), the frontier must advance monotonically as it catches
// up, and its lag is bounded by the straggler's own high-water.
TEST(ChaosScenarioTest, StragglerHoldsFrontierMonotoneWithBoundedLag) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  std::vector<uint64_t> values(500);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i % 100;
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(12);
  client.PerturbBatch(values, reports, rng);
  LdpJoinSketchServer epoch_sketch(params, epsilon);
  epoch_sketch.AbsorbBatch(reports);
  const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();

  CentralNodeOptions options;
  options.window_epochs = 2;
  options.window_expected_regions = 2;
  CentralNode central(params, epsilon, options);
  ASSERT_TRUE(central.Start().ok());
  auto sender =
      FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());

  // Region 0 races ahead to epoch 2; region 1 straggles at epoch 0.
  for (uint64_t e = 0; e <= 2; ++e) {
    ASSERT_TRUE(sender->PushEpochSnapshot(0, e, snapshot).ok());
  }
  ASSERT_TRUE(sender->PushEpochSnapshot(1, 0, snapshot).ok());
  ASSERT_TRUE(central.window()->aligned());
  EXPECT_EQ(central.window()->frontier(), 0u);  // held back by the straggler
  EXPECT_GT(central.window()->epochs_pending(), 0u);  // ahead, not lost

  // The straggler catches up one epoch: the frontier advances exactly
  // that far — monotone, lag bounded by the straggler's high-water.
  ASSERT_TRUE(sender->PushEpochSnapshot(1, 1, snapshot).ok());
  EXPECT_EQ(central.window()->frontier(), 1u);
  ASSERT_TRUE(sender->PushEpochSnapshot(1, 2, snapshot).ok());
  EXPECT_EQ(central.window()->frontier(), 2u);
  EXPECT_EQ(central.window()->epochs_pending(), 0u);
  // W=2 slid past epoch 0: its snapshots were subtracted back out.
  EXPECT_GT(central.window()->epochs_expired(), 0u);
  ASSERT_TRUE(sender->Finish().ok());
  central.Stop();
}

// A reconnect storm (many short-lived sessions) grows counters, never
// memory: the departed-connection table stays bounded, with the
// overflow folded into an accumulator row.
TEST(ChaosScenarioTest, ReconnectStormKeepsDepartedTableBounded) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kStorm = 100;
  for (int i = 0; i < kStorm; ++i) {
    auto sender =
        FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
    ASSERT_TRUE(sender.ok()) << sender.status().ToString();
    ASSERT_TRUE(sender->Finish().ok());
  }
  server.Stop();
  const NetMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.connections_accepted, static_cast<uint64_t>(kStorm));
  EXPECT_LE(metrics.connections.size(), 64u);  // bounded rows
  EXPECT_GE(metrics.connections_folded, 36u);  // the rest folded, not lost
  // Folded totals stay monotone: every session's HELLO+BYE still counts.
  uint64_t frames = 0;
  for (const auto& conn : metrics.connections) frames += conn.frames_received;
  EXPECT_GE(frames, metrics.connections.size());
}

// The idle-connection watchdog: a client that completes the handshake
// and then goes silent is reaped within the configured deadline — its
// fd and reader thread reclaimed, the reap counted.
TEST(ChaosScenarioTest, HungClientReapedWithinIdleDeadline) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  options.idle_timeout_seconds = 1;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  auto hung =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(hung.ok());
  // Send nothing. The server must cut the connection on its own.
  bool reaped = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (server.metrics().idle_reaped >= 1) {
      reaped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(reaped) << "idle connection was not reaped within 5s "
                      << "(deadline was 1s)";
  server.Stop();
  EXPECT_GE(server.metrics().idle_reaped, 1u);
}

}  // namespace
}  // namespace ldpjs
