// FrameSender: client side of the LJSP session protocol. Connects to a
// FrameServer, performs the HELLO handshake (sketch params must match the
// server's bit for bit), then streams PerturbBatch output as LJSB batch
// envelopes inside DATA frames.
//
// Flow control: against a kShed server every DATA frame is acked; a busy
// ack makes SendReports/SendEncodedBatch retry the same frame after a
// jittered exponential backoff (bounded by Options::max_busy_retries, then
// Unavailable). Against a kBlock server there are no per-frame acks — TCP
// flow control is the backpressure — and Finish()'s BYE/BYE_OK exchange is
// the proof that every frame sent on this connection has been ingested.
#ifndef LDPJS_NET_FRAME_SENDER_H_
#define LDPJS_NET_FRAME_SENDER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "core/ldp_join_sketch.h"
#include "net/protocol.h"
#include "obs/fleet_stats.h"
#include "obs/trace.h"

namespace ldpjs {

class FrameSender {
 public:
  struct Options {
    int max_busy_retries = 100000;  ///< per frame, before Unavailable
    /// Backoff between busy retries: decorrelated jitter from 100us up to
    /// 20ms, so a fleet of shed clients does not hammer the server in
    /// lockstep the way a fixed interval would.
    BackoffOptions busy_backoff{.base_micros = 100, .cap_micros = 20000};
    /// SO_RCVTIMEO on the session socket: caps how long any reply wait
    /// (HELLO_OK, acks, snapshots) can hang on a dead-but-connected server
    /// before failing with DeadlineExceeded. 0 disables. Chaos runs arm
    /// this so a dropped EPOCH_PUSH_OK turns into a retry, not a deadlock.
    int recv_timeout_seconds = 0;
    /// Fault-injection site label for the session socket (chaos runs);
    /// also checked as "<fault_site>.connect" before connecting. Empty
    /// disables.
    std::string fault_site;
    /// Announce a region id in the HELLO (federation upstream sessions).
    /// The HELLO_OK then carries the server's next-expected epoch for that
    /// region — read it with region_next_epoch(). See RegionalNode for the
    /// restart/collision sync built on it.
    bool announce_region = false;
    uint32_t region_id = 0;
    /// Protocol version announced in the HELLO. The session speaks the
    /// minimum of this and the server's version (read it back with
    /// negotiated_version()). Tests set 2 to exercise a v2 session against
    /// a v3 server; real clients leave the default.
    uint8_t announce_version = kNetVersion;
    /// Trace sampling: wrap every Nth DATA batch in a TRACED envelope
    /// (batch 0, N, 2N, ...) with a fresh trace id and an origin timestamp
    /// taken just before the send. 0 (default) disables sampling. Ignored
    /// on sessions that negotiated < v4 — the frames stay plain, so traced
    /// senders interoperate with v3 servers untouched.
    uint64_t trace_every = 0;
  };

  /// Connects and completes the handshake. Fails with the server's ERROR
  /// status (e.g. FailedPrecondition on a params mismatch) or Unavailable
  /// if the host is unreachable.
  static Result<FrameSender> Connect(const std::string& host, uint16_t port,
                                     const SketchParams& params,
                                     double epsilon, const Options& options);
  static Result<FrameSender> Connect(const std::string& host, uint16_t port,
                                     const SketchParams& params,
                                     double epsilon) {
    return Connect(host, port, params, epsilon, Options());
  }

  FrameSender(FrameSender&&) = default;
  FrameSender& operator=(FrameSender&&) = default;

  /// Encodes `reports` into LJSB envelopes of at most kMaxWireBatchReports
  /// each and streams them as DATA frames.
  Status SendReports(std::span<const LdpReport> reports);

  /// Streams one already-encoded LJSB batch envelope. This is the zero-
  /// re-encode path the loopback simulation uses: the exact bytes the
  /// in-process service would ingest go on the wire. Applies Options::
  /// trace_every sampling (the sampled batch goes out as a TRACED frame
  /// with a fresh id and origin = just before this send).
  Status SendEncodedBatch(std::span<const uint8_t> envelope);

  /// Streams one batch wrapped in a TRACED envelope with an explicit trace
  /// context — how a caller includes its own encode time in the origin
  /// (stamp origin_ns before encoding). On a session below v4 the batch is
  /// sent plain: the trace is dropped, never a protocol error, so the same
  /// caller code runs against old servers.
  Status SendTracedBatch(std::span<const uint8_t> envelope,
                         const TraceContext& trace);

  /// Asks the server for a raw-lane snapshot of everything ingested so far
  /// (ordered after every frame this connection has sent). Returns the
  /// serialized un-finalized sketch (LdpJoinSketchServer::Deserialize).
  Result<std::vector<uint8_t>> SnapshotRawSketch();

  /// Federation upstream path: ships one epoch's serialized raw-lane
  /// snapshot to a central aggregator as EPOCH_PUSH and waits for the ack.
  /// The ack says whether the snapshot was merged (kApplied) or the
  /// central had already applied this (region, epoch) (kDuplicate — how a
  /// retry after an ambiguous failure resolves to exactly-once), and
  /// carries the central's next-expected epoch for the region so the
  /// shipper's numbering tracks the central's high-water. Any transport
  /// failure leaves the outcome unknown; reconnect and push the same
  /// (region, epoch) again.
  Result<EpochPushAck> PushEpochSnapshot(uint32_t region_id, uint64_t epoch,
                                         std::span<const uint8_t> raw_sketch);

  /// PushEpochSnapshot with a trace context riding along (a regional
  /// shipper forwarding the context claimed at its epoch cut, origin
  /// preserved, so the central's publish measures client→central latency).
  /// Below v4 the push goes out plain and the trace is dropped.
  Result<EpochPushAck> PushEpochSnapshotTraced(
      uint32_t region_id, uint64_t epoch, std::span<const uint8_t> raw_sketch,
      const TraceContext& trace);

  /// Ingest barrier: returns once the server has absorbed every frame this
  /// connection sent so far (PING/PING_OK — no lanes shipped back, unlike
  /// SnapshotRawSketch). The session stays open, unlike Finish(). On a v3
  /// session the server also republishes its query view at the barrier, so
  /// Ping-then-Query reads your own writes.
  Status Ping();

  /// v3 read path: one query against the server's published finalized
  /// view (join size / frequency / frequent items / multiway chain / AQP
  /// range kinds — see QueryKind). Fails with FailedPrecondition without
  /// touching the wire when the session negotiated < v3, and with the
  /// server's ERROR status when it rejects the request (mismatched probe
  /// params, oversized domain, ...). The session stays open either way.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// v4 ops path: asks the server for its stats snapshot (the same JSON
  /// the SIGUSR1 dump and JSONL exporter emit — see obs/stats_export.h).
  /// Fails with FailedPrecondition without touching the wire when the
  /// session negotiated < v4. Never ordered behind ingest server-side.
  Result<std::string> Stats();

  /// v5 fleet path: ships this node's full stats snapshot — counters,
  /// gauges, raw histogram buckets — upstream as STATS_PUSH and waits for
  /// the ack. A lost or failed push is harmless (the series are cumulative;
  /// the next push supersedes it), so callers treat errors as advisory.
  /// Fails with FailedPrecondition without touching the wire when the
  /// session negotiated < v5.
  Status PushStats(const FleetSnapshot& snapshot);

  /// v5 fleet path: asks the server (a central) for its merged fleet view —
  /// every region's last pushed snapshot, the exactly-merged cluster
  /// histograms, and per-region + cluster health verdicts. Same < v5
  /// local refusal as PushStats.
  Result<FleetView> FleetStats();

  /// Asks the server to end collection (the CLI `serve` loop exits, drains,
  /// and finalizes). FINALIZE is processed after every frame this
  /// connection sent, so the FINALIZE_OK this waits for is — like BYE_OK —
  /// proof that this connection's data is in the lanes. It is also the
  /// session's last exchange: the server may tear the transport down
  /// immediately after confirming, so do not call Finish() afterwards.
  Status RequestFinalize();

  /// Federation variant: the FINALIZE carries `region_id`, and the server
  /// counts at most one finalize per region — so a retry on a fresh
  /// session after a lost ack is idempotent and can never end a
  /// multi-region collection early.
  Status RequestFinalizeAsRegion(uint32_t region_id);

  /// BYE/BYE_OK: returns once the server has ingested every frame this
  /// connection sent. The connection is done after this.
  Status Finish();

  uint32_t server_shards() const { return session_.num_shards; }
  bool acked_data() const { return session_.acked_data; }
  /// The version this session actually speaks: min(ours, server's).
  uint8_t negotiated_version() const { return session_.version; }
  /// First epoch the server has not applied for the announced region
  /// (0 when no region was announced or the server never heard from it).
  uint64_t region_next_epoch() const { return session_.region_next_epoch; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t busy_retries() const { return busy_retries_; }
  /// Cumulative time this sender has slept in busy backoff.
  uint64_t backoff_micros() const { return busy_backoff_.total_micros(); }

 private:
  FrameSender(Socket socket, const SessionHelloOk& session,
              const Options& options)
      : socket_(std::move(socket)),
        session_(session),
        options_(options),
        busy_backoff_(options.busy_backoff) {}

  /// Reads the next server frame, surfacing ERROR frames as their Status.
  Result<NetFrame> ReadReply();

  /// Shared body of the plain/traced batch sends: writes either a bare
  /// DATA frame or a TRACED(kData) envelope, then runs the busy-retry
  /// protocol. A retried frame re-sends the identical bytes.
  Status SendBatchInternal(std::span<const uint8_t> envelope,
                           const TraceContext& trace);

  Socket socket_;
  SessionHelloOk session_;
  Options options_;
  Backoff busy_backoff_;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t busy_retries_ = 0;
  uint64_t batches_sent_ = 0;  ///< trace_every sampling cursor
  bool finished_ = false;
};

}  // namespace ldpjs

#endif  // LDPJS_NET_FRAME_SENDER_H_
