#include "core/fap.h"

#include "common/hadamard.h"

namespace ldpjs {

FapClient::FapClient(const SketchParams& params, double epsilon, FapMode mode,
                     std::unordered_set<uint64_t> frequent_items)
    : inner_(params, epsilon),
      mode_(mode),
      frequent_items_(std::move(frequent_items)) {}

bool FapClient::IsTarget(uint64_t value) const {
  const bool frequent = frequent_items_.contains(value);
  return mode_ == FapMode::kHigh ? frequent : !frequent;
}

LdpReport FapClient::Perturb(uint64_t value, Xoshiro256& rng) const {
  if (IsTarget(value)) {
    // Algorithm 4 line 10: targets go through the LDPJoinSketch client.
    return inner_.Perturb(value, rng);
  }
  // Non-target: encode v[r] = 1 at a uniform r, independent of `value`
  // (Algorithm 4 lines 2-8). After the Hadamard transform, w[l] = H_m[r, l].
  const SketchParams& params = inner_.params();
  LdpReport report;
  report.j =
      static_cast<uint16_t>(rng.NextBounded(static_cast<uint64_t>(params.k)));
  report.l =
      static_cast<uint32_t>(rng.NextBounded(static_cast<uint64_t>(params.m)));
  const uint64_t r = rng.NextBounded(static_cast<uint64_t>(params.m));
  int w = HadamardEntry(r, report.l);
  if (rng.NextBernoulli(inner_.flip_probability())) w = -w;
  report.y = static_cast<int8_t>(w);
  return report;
}

}  // namespace ldpjs
