#include "ldp/krr.h"

#include <cmath>

#include "common/status.h"

namespace ldpjs {

double JoinSizeFromFrequencies(std::span<const double> freq_a,
                               std::span<const double> freq_b,
                               bool clamp_negative) {
  LDPJS_CHECK(freq_a.size() == freq_b.size());
  double acc = 0.0;
  for (size_t d = 0; d < freq_a.size(); ++d) {
    const double fa = clamp_negative ? std::max(0.0, freq_a[d]) : freq_a[d];
    const double fb = clamp_negative ? std::max(0.0, freq_b[d]) : freq_b[d];
    acc += fa * fb;
  }
  return acc;
}

double CommCostModel::KrrBitsPerUser(uint64_t domain) {
  return std::ceil(std::log2(static_cast<double>(domain)));
}

double CommCostModel::FlhBitsPerUser(uint64_t pool, uint64_t g) {
  return std::ceil(std::log2(static_cast<double>(pool))) +
         std::ceil(std::log2(static_cast<double>(g)));
}

double CommCostModel::HadamardSketchBitsPerUser(int k, int m) {
  return 1.0 + std::ceil(std::log2(static_cast<double>(k))) +
         std::ceil(std::log2(static_cast<double>(m)));
}

KrrClient::KrrClient(uint64_t domain, double epsilon) : domain_(domain) {
  LDPJS_CHECK(domain >= 2);
  LDPJS_CHECK(epsilon > 0.0);
  const double e = std::exp(epsilon);
  keep_prob_ = e / (e + static_cast<double>(domain) - 1.0);
}

uint64_t KrrClient::Perturb(uint64_t value, Xoshiro256& rng) const {
  LDPJS_CHECK(value < domain_);
  if (rng.NextBernoulli(keep_prob_)) return value;
  // Uniform over the other |D| - 1 values.
  uint64_t other = rng.NextBounded(domain_ - 1);
  if (other >= value) ++other;
  return other;
}

KrrServer::KrrServer(uint64_t domain, double epsilon)
    : domain_(domain), counts_(domain, 0) {
  LDPJS_CHECK(domain >= 2);
  LDPJS_CHECK(epsilon > 0.0);
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(domain) - 1.0);
  q_ = (1.0 - p_) / (static_cast<double>(domain) - 1.0);
}

void KrrServer::Absorb(uint64_t report) {
  LDPJS_CHECK(report < domain_);
  ++counts_[report];
  ++total_;
}

double KrrServer::EstimateFrequency(uint64_t d) const {
  LDPJS_CHECK(d < domain_);
  const double n = static_cast<double>(total_);
  return (static_cast<double>(counts_[d]) - n * q_) / (p_ - q_);
}

std::vector<double> KrrServer::EstimateAllFrequencies() const {
  std::vector<double> out(domain_);
  for (uint64_t d = 0; d < domain_; ++d) out[d] = EstimateFrequency(d);
  return out;
}

std::vector<double> KrrEstimateFrequencies(const Column& column,
                                           double epsilon, uint64_t seed) {
  KrrClient client(column.domain(), epsilon);
  KrrServer server(column.domain(), epsilon);
  Xoshiro256 rng(seed);
  for (uint64_t v : column.values()) {
    server.Absorb(client.Perturb(v, rng));
  }
  return server.EstimateAllFrequencies();
}

}  // namespace ldpjs
