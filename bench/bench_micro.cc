// Micro-benchmarks (google-benchmark): hashing, Hadamard transforms, client
// perturbation and server absorption — the building blocks whose O(1)/
// O(m log m) costs the DESIGN.md claims rest on.
#include <benchmark/benchmark.h>

#include "common/hadamard.h"
#include "common/hash.h"
#include "common/random.h"
#include "core/fap.h"
#include "core/ldp_join_sketch.h"
#include "data/zipf.h"

namespace ldpjs {
namespace {

void BM_BucketHash(benchmark::State& state) {
  BucketHash h(1, 1024);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(x++));
  }
}
BENCHMARK(BM_BucketHash);

void BM_SignHash(benchmark::State& state) {
  SignHash xi(2);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xi(x++));
  }
}
BENCHMARK(BM_SignHash);

void BM_TabulationHash(benchmark::State& state) {
  TabulationHash h(3);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(x++));
  }
}
BENCHMARK(BM_TabulationHash);

void BM_HadamardEntry(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HadamardEntry(i, i + 1));
    ++i;
  }
}
BENCHMARK(BM_HadamardEntry);

void BM_Fwht(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  std::vector<double> data(m, 1.0);
  for (auto _ : state) {
    FastWalshHadamardTransform(std::span<double>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fwht)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_ClientPerturbFast(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = static_cast<int>(state.range(0));
  LdpJoinSketchClient client(params, 4.0);
  Xoshiro256 rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(v++, rng));
  }
}
BENCHMARK(BM_ClientPerturbFast)->Arg(1024)->Arg(16384);

void BM_ClientPerturbReference(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = static_cast<int>(state.range(0));
  LdpJoinSketchClient client(params, 4.0);
  Xoshiro256 rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.PerturbReference(v++, rng));
  }
}
BENCHMARK(BM_ClientPerturbReference)->Arg(1024)->Arg(16384);

void BM_FapPerturbNonTarget(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  FapClient client(params, 4.0, FapMode::kHigh, {});  // everything non-target
  Xoshiro256 rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(v++, rng));
  }
}
BENCHMARK(BM_FapPerturbNonTarget);

void BM_ServerAbsorb(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  LdpJoinSketchServer server(params, 4.0);
  LdpReport report{1, 3, 17};
  for (auto _ : state) {
    server.Absorb(report);
  }
  benchmark::DoNotOptimize(server.total_reports());
}
BENCHMARK(BM_ServerAbsorb);

void BM_ServerFinalize(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    LdpJoinSketchServer server(params, 4.0);
    state.ResumeTiming();
    server.Finalize();
  }
}
BENCHMARK(BM_ServerFinalize)->Arg(1024)->Arg(4096);

void BM_ZipfGeneration(benchmark::State& state) {
  ZipfParams params;
  params.alpha = 1.1;
  params.domain = 100000;
  params.rows = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateZipf(params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZipfGeneration)->Arg(100000);

}  // namespace
}  // namespace ldpjs

BENCHMARK_MAIN();
