// CentralNode: the top of the federated aggregation topology. A FrameServer
// whose traffic is EPOCH_PUSH snapshots from RegionalNodes (it accepts
// direct DATA sessions too — the tiers speak one protocol), with the
// central-specific conveniences on top: wait-for-N-regions finalize
// coordination, estimate-at-epoch-boundary views, and — when
// `window_epochs` is set — a WindowedView answering sliding-window
// estimates over the last W cross-region-aligned epochs from an
// incrementally cached accumulator.
//
// Exactness: every regional snapshot is raw int64 lanes and every merge is
// integer addition, so after all regions flush, Finalize() yields the
// sketch a single node absorbing every client's report directly would
// produce, bit for bit — for any region count, epoch schedule, shard count
// per tier, and any mid-epoch disconnect/retry (the (region, epoch) dedup
// makes retried pushes exactly-once). The same linearity runs backwards:
// the windowed view subtracts expired epoch lanes exactly, so the windowed
// estimate equals a single node ingesting only the window's reports.
#ifndef LDPJS_FEDERATION_CENTRAL_NODE_H_
#define LDPJS_FEDERATION_CENTRAL_NODE_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/ldp_join_sketch.h"
#include "federation/windowed_view.h"
#include "net/frame_server.h"

namespace ldpjs {

struct CentralNodeOptions {
  /// Listening port, shard count, queue depth, backpressure policy.
  FrameServerOptions server;
  /// How many FINALIZE requests end the collection — one per region when
  /// regions forward their clients' FINALIZE upstream.
  size_t finalize_after = 1;
  /// 0 = no windowed view (full-history estimates only). W >= 1 maintains
  /// a WindowedView over the last W aligned epochs, fed by every applied
  /// EPOCH_PUSH. Pass a W larger than any run's epoch count for
  /// "all epochs, incrementally cached".
  uint64_t window_epochs = 0;
  /// How many distinct regions the windowed view's aligned frontier waits
  /// for before answering (and gates advancement on, forever after). 0 =
  /// use finalize_after — right whenever the FINALIZE quorum is one
  /// forwarded FINALIZE per region. Set it explicitly when the quorum
  /// differs from the region count (e.g. a single coordinator forwards
  /// the FINALIZE for everyone): too low and early regions' windows
  /// answer before the rest have shipped; too high and the frontier never
  /// aligns at all.
  size_t window_expected_regions = 0;
};

class CentralNode {
 public:
  CentralNode(const SketchParams& params, double epsilon,
              const CentralNodeOptions& options);

  Status Start() { return server_.Start(); }
  uint16_t port() const { return server_.port(); }

  /// Blocks until `finalize_after` FINALIZE frames have arrived (each
  /// region sends one as its flush completes).
  void WaitForRegions() { server_.WaitForFinalizeRequests(finalize_after_); }

  /// A finalized copy of everything merged so far, without disturbing
  /// collection — estimates at an epoch boundary while regions keep
  /// streaming. Each view applies the global debias to its own copy, so
  /// views are themselves exact for the reports they contain. Re-merges
  /// every shard per call; for repeated windowed queries prefer
  /// WindowedFinalizedView (cached).
  LdpJoinSketchServer FinalizedView() const { return server_.FinalizedView(); }

  /// Finalized sliding-window view over the last `window_epochs` aligned
  /// epochs — the cached incremental path. Requires windowed(). Copies the
  /// sketch; hot read paths should hold WindowedPublishedView() instead.
  LdpJoinSketchServer WindowedFinalizedView() const {
    LDPJS_CHECK(window_ != nullptr);
    return window_->Finalized();
  }

  /// The latest RCU-published immutable window view — one atomic load, no
  /// copy, no lock shared with ingest. This is also what QUERY frames are
  /// answered from on a windowed central. Requires windowed().
  std::shared_ptr<const PublishedView> WindowedPublishedView() const {
    LDPJS_CHECK(window_ != nullptr);
    return window_->Published();
  }

  bool windowed() const { return window_ != nullptr; }
  /// The sliding-window state (frontier, pending/expired counters);
  /// nullptr when window_epochs was 0.
  const WindowedView* window() const { return window_.get(); }

  void Stop() { server_.Stop(); }

  /// Final merged + finalized sketch; once, after Stop().
  LdpJoinSketchServer Finalize() { return server_.Finalize(); }

  NetMetrics metrics() const { return server_.metrics(); }
  const FrameServer& server() const { return server_; }
  FrameServer& server_mutable() { return server_; }

  /// The fleet view assembled from regions' STATS_PUSH snapshots: per-region
  /// last snapshots with health verdicts, exact merged cluster histograms,
  /// and the cluster roll-up. Same object FLEET_STATS serves on the wire.
  FleetView CurrentFleetView() const { return server_.CurrentFleetView(); }
  /// Structured operational event log (health transitions, reconnects,
  /// spool replays, reaps).
  const EventLog& events() const { return server_.events(); }

 private:
  /// Installs the windowed view as the server's epoch observer (no-op when
  /// windowing is off).
  static FrameServerOptions WithEpochObserver(FrameServerOptions options,
                                              WindowedView* window);

  std::unique_ptr<WindowedView> window_;  ///< before server_: observer target
  FrameServer server_;
  size_t finalize_after_;
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_CENTRAL_NODE_H_
