// Discretized Gaussian column generator (paper §VII-A dataset (2)):
// round(N(mu, sigma)) clamped to [0, domain).
#ifndef LDPJS_DATA_GAUSSIAN_H_
#define LDPJS_DATA_GAUSSIAN_H_

#include <cstdint>

#include "data/column.h"

namespace ldpjs {

struct GaussianParams {
  double mu = 40'000.0;
  double sigma = 9'500.0;
  uint64_t domain = 80'000;
  uint64_t rows = 1'000'000;
  uint64_t seed = 1;
};

/// Draws `rows` iid rounded-and-clamped Gaussian values over [0, domain).
Column GenerateGaussian(const GaussianParams& params);

/// Uniform values over [0, domain) — the no-skew control workload.
Column GenerateUniform(uint64_t domain, uint64_t rows, uint64_t seed);

}  // namespace ldpjs

#endif  // LDPJS_DATA_GAUSSIAN_H_
