#include "federation/regional_node.h"

#include <chrono>
#include <thread>
#include <utility>

namespace ldpjs {

RegionalNode::RegionalNode(const SketchParams& params, double epsilon,
                           const RegionalNodeOptions& options)
    : params_(params),
      epsilon_(epsilon),
      options_(options),
      server_(params, epsilon, options.server) {
  LDPJS_CHECK(options_.max_ship_attempts >= 1);
  // Epoch numbers are an incarnation-scoped monotonic sequence seeded from
  // the wall clock: a restarted region (same region_id, fresh process)
  // must start ABOVE every epoch its previous incarnation shipped, or the
  // central's (region, epoch) high-water dedup would silently discard the
  // new incarnation's data as "already applied". Microsecond resolution
  // makes a restart-within-the-same-tick (or a clock stepped backwards
  // across a restart) the only collision window.
  next_epoch_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

RegionalNode::~RegionalNode() {
  // Best-effort teardown: never blocks on an unreachable central. Data not
  // shipped yet is lost with the process — call FlushAndStop for the
  // guaranteed flush.
  if (scheduler_) scheduler_->Stop();
  server_.Stop();
}

Status RegionalNode::Start() {
  LDPJS_RETURN_IF_ERROR(server_.Start());
  if (options_.epoch_millis > 0) {
    scheduler_ = std::make_unique<EpochScheduler>(
        std::chrono::milliseconds(options_.epoch_millis), [this](uint64_t) {
          // A failed ship keeps its snapshots pending; the next tick (or
          // the final flush) resumes them, so a tick never loses data.
          (void)CutAndShip();
        });
    scheduler_->Start();
  }
  return Status::OK();
}

Status RegionalNode::CutAndShip() {
  std::lock_guard<std::mutex> lock(ship_mu_);
  if (flushed_) {
    return Status::FailedPrecondition("region already flushed");
  }
  ShardedAggregator::EpochCut cut = server_.CutEpochSnapshot();
  const uint64_t epoch = next_epoch_++;
  if (cut.reports > 0) {
    pending_.push_back(PendingSnapshot{epoch, std::move(cut.raw_sketch)});
  }
  return ShipPendingLocked();
}

Status RegionalNode::ShipPendingLocked() {
  int attempts = 0;
  auto backoff = [&](const Status& status) -> Status {
    ++ship_retries_;
    if (++attempts >= options_.max_ship_attempts) {
      return Status::Unavailable(
          "central unreachable after " + std::to_string(attempts) +
          " ship attempts (" + std::to_string(pending_.size()) +
          " snapshots pending, none lost): " + status.ToString());
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.ship_retry_millis));
    return Status::OK();
  };
  while (!pending_.empty()) {
    if (!upstream_) {
      auto sender = FrameSender::Connect(
          options_.central_host, options_.central_port, params_, epsilon_);
      if (!sender.ok()) {
        LDPJS_RETURN_IF_ERROR(backoff(sender.status()));
        continue;
      }
      upstream_.emplace(std::move(*sender));
    }
    const PendingSnapshot& snap = pending_.front();
    auto applied = upstream_->PushEpochSnapshot(options_.region_id, snap.epoch,
                                                snap.raw_sketch);
    if (!applied.ok()) {
      // Outcome unknown (the connection may have died after the central
      // merged but before we read the ack): reconnect and push the same
      // (region, epoch) again — the central's dedup makes it exactly-once.
      upstream_.reset();
      LDPJS_RETURN_IF_ERROR(backoff(applied.status()));
      continue;
    }
    ++epochs_shipped_;
    if (!*applied) ++duplicate_acks_;  // a retry resolved to exactly-once
    snapshot_bytes_shipped_ += snap.raw_sketch.size();
    pending_.pop_front();
  }
  return Status::OK();
}

Status RegionalNode::FlushAndStop() {
  // The scheduler's tick takes ship_mu_, so stop it before locking.
  if (scheduler_) scheduler_->Stop();
  // Stop drains every queued frame into the lanes, so the final cut below
  // holds everything any client pushed to this region.
  server_.Stop();
  std::lock_guard<std::mutex> lock(ship_mu_);
  if (flushed_) return Status::OK();
  ShardedAggregator::EpochCut cut = server_.CutEpochSnapshot();
  const uint64_t epoch = next_epoch_++;
  if (cut.reports > 0) {
    pending_.push_back(PendingSnapshot{epoch, std::move(cut.raw_sketch)});
  }
  // A failed ship leaves flushed_ false with the snapshots still pending —
  // FlushAndStop can be called again once the central is reachable.
  LDPJS_RETURN_IF_ERROR(ShipPendingLocked());
  flushed_ = true;
  if (options_.forward_finalize) {
    // Retried at-least-once, counted exactly-once: the FINALIZE carries
    // this region's id and the central counts each region a single time,
    // so a retry after a lost FINALIZE_OK can never end a multi-region
    // collection early. (The data barrier is the acked EPOCH_PUSHes
    // above; this is the coordination barrier.)
    int attempts = 0;
    for (;;) {
      if (!upstream_) {
        auto sender = FrameSender::Connect(
            options_.central_host, options_.central_port, params_, epsilon_);
        if (!sender.ok()) {
          if (++attempts >= options_.max_ship_attempts) {
            return sender.status();
          }
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.ship_retry_millis));
          continue;
        }
        upstream_.emplace(std::move(*sender));
      }
      const Status finalized =
          upstream_->RequestFinalizeAsRegion(options_.region_id);
      upstream_.reset();
      if (finalized.ok()) break;
      if (++attempts >= options_.max_ship_attempts) return finalized;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.ship_retry_millis));
    }
  } else if (upstream_) {
    (void)upstream_->Finish();  // best-effort BYE; the pushes are acked
    upstream_.reset();
  }
  return Status::OK();
}

uint64_t RegionalNode::epochs_shipped() const {
  std::lock_guard<std::mutex> lock(ship_mu_);
  return epochs_shipped_;
}

uint64_t RegionalNode::snapshot_bytes_shipped() const {
  std::lock_guard<std::mutex> lock(ship_mu_);
  return snapshot_bytes_shipped_;
}

uint64_t RegionalNode::ship_retries() const {
  std::lock_guard<std::mutex> lock(ship_mu_);
  return ship_retries_;
}

uint64_t RegionalNode::duplicate_acks() const {
  std::lock_guard<std::mutex> lock(ship_mu_);
  return duplicate_acks_;
}

size_t RegionalNode::pending_snapshots() const {
  std::lock_guard<std::mutex> lock(ship_mu_);
  return pending_.size();
}

}  // namespace ldpjs
