#include "sketch/count_mean.h"

#include "common/random.h"
#include "common/status.h"

namespace ldpjs {

CountMeanSketch::CountMeanSketch(uint64_t seed, int k, int m) : k_(k), m_(m) {
  LDPJS_CHECK(k >= 1 && m >= 2);
  buckets_.reserve(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    buckets_.emplace_back(
        Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(j) + 1))),
        static_cast<uint64_t>(m));
  }
  cells_.assign(static_cast<size_t>(k) * static_cast<size_t>(m), 0.0);
}

void CountMeanSketch::Update(uint64_t d) {
  for (int j = 0; j < k_; ++j) {
    const uint64_t col = buckets_[static_cast<size_t>(j)](d);
    cells_[static_cast<size_t>(j) * static_cast<size_t>(m_) + col] += 1.0;
  }
  ++total_count_;
}

void CountMeanSketch::UpdateColumn(const Column& column) {
  for (uint64_t v : column.values()) Update(v);
}

double CountMeanSketch::FrequencyEstimate(uint64_t d) const {
  const double n = static_cast<double>(total_count_);
  const double m = static_cast<double>(m_);
  double acc = 0.0;
  for (int j = 0; j < k_; ++j) {
    const uint64_t col = buckets_[static_cast<size_t>(j)](d);
    acc += (cell(j, static_cast<int>(col)) - n / m) * m / (m - 1.0);
  }
  return acc / static_cast<double>(k_);
}

}  // namespace ldpjs
