// Multi-way chain join under LDP (paper §VI): estimate
//   Q = T1(A) ⋈ T2(A, B) ⋈ T3(B)
// where T2 is a private two-attribute table (e.g. a user-movie rating edge
// list), using per-attribute hash families shared between the end sketches
// and the middle matrix sketch. The non-private COMPASS estimate is shown
// as the floor.
#include <cstdio>

#include "core/multiway.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"
#include "data/zipf.h"
#include "sketch/compass.h"

int main() {
  using namespace ldpjs;

  const uint64_t domain = 20'000;
  const uint64_t rows = 500'000;
  const double epsilon = 4.0;
  const int k = 18, m = 512;

  // T1 and T3: single-attribute end tables. T2: pair column linking them.
  const JoinWorkload ends = MakeZipfWorkload(1.4, domain, rows, 51);
  PairColumn t2;
  t2.left_domain = t2.right_domain = domain;
  {
    ZipfParams zp;
    zp.alpha = 1.4;
    zp.domain = domain;
    zp.rows = rows;
    zp.seed = 151;
    t2.left = GenerateZipf(zp).values();
    zp.seed = 152;
    t2.right = GenerateZipf(zp).values();
  }
  const double truth = ExactChainJoinSize(ends.table_a, {t2}, ends.table_b);

  // Per-attribute seeds: attribute A = 1001, attribute B = 1002. Every
  // sketch touching an attribute uses that attribute's seed.
  const uint64_t seed_attr_a = 1001, seed_attr_b = 1002;

  // Non-private COMPASS floor.
  FastAgmsSketch c_left(seed_attr_a, k, m), c_right(seed_attr_b, k, m);
  c_left.UpdateColumn(ends.table_a);
  c_right.UpdateColumn(ends.table_b);
  FastAgmsMatrixSketch c_mid(seed_attr_a, seed_attr_b, k, m, m);
  c_mid.UpdatePairColumn(t2);
  const double compass = CompassChainJoinEstimate(c_left, {&c_mid}, c_right);

  // LDP version: end tables via LDPJoinSketch, middle via the 2-dim sketch.
  SketchParams end_params;
  end_params.k = k;
  end_params.m = m;
  end_params.seed = seed_attr_a;
  SimulationOptions sim;
  sim.run_seed = 61;
  const LdpJoinSketchServer left =
      BuildLdpJoinSketch(ends.table_a, end_params, epsilon, sim);
  end_params.seed = seed_attr_b;
  sim.run_seed = 62;
  const LdpJoinSketchServer right =
      BuildLdpJoinSketch(ends.table_b, end_params, epsilon, sim);

  MultiwayParams mid_params;
  mid_params.k = k;
  mid_params.m_left = m;
  mid_params.m_right = m;
  mid_params.left_seed = seed_attr_a;
  mid_params.right_seed = seed_attr_b;
  const LdpMultiwayServer mid =
      BuildLdpMultiwaySketch(t2, mid_params, epsilon, 63);

  const double ldp = LdpChainJoinEstimate(left, {&mid}, right);

  std::printf("3-way chain join  T1(A) ⋈ T2(A,B) ⋈ T3(B)\n");
  std::printf("  exact          : %.4e\n", truth);
  std::printf("  COMPASS (no DP): %.4e  (RE %.3f)\n", compass,
              std::abs(compass - truth) / truth);
  std::printf("  LDPJoinSketch  : %.4e  (RE %.3f, eps=%.1f)\n", ldp,
              std::abs(ldp - truth) / truth, epsilon);
  std::printf("\neach T2 user still sends a single ±1 bit plus indices; no "
              "tuple leaves a device unperturbed.\n");
  return 0;
}
