// The health evaluator and the event log: rule thresholds (DEGRADED at 1x,
// CRITICAL at critical_multiplier x), worst-rule-wins with every breached
// rule named in the cause, signal extraction from pushed snapshots, and the
// event ring's bound/drop accounting and JSONL shape.
#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "obs/events.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace ldpjs {
namespace {

TEST(ObsHealthTest, HealthySignalsAreOkWithEmptyCause) {
  HealthSignals signals;
  signals.i2q_p99_ms = 10.0;
  signals.has_i2q = true;
  signals.frames = 1000;
  const HealthVerdict verdict = EvaluateHealth(signals, HealthOptions{});
  EXPECT_EQ(verdict.state, HealthState::kOk);
  EXPECT_TRUE(verdict.cause.empty());
}

TEST(ObsHealthTest, I2qSloDegradesThenGoesCriticalAtMultiplier) {
  HealthOptions options;
  options.i2q_p99_target_ms = 100.0;
  options.critical_multiplier = 4.0;
  HealthSignals signals;
  signals.has_i2q = true;

  signals.i2q_p99_ms = 99.0;
  EXPECT_EQ(EvaluateHealth(signals, options).state, HealthState::kOk);

  signals.i2q_p99_ms = 150.0;  // past target, under 4x
  HealthVerdict verdict = EvaluateHealth(signals, options);
  EXPECT_EQ(verdict.state, HealthState::kDegraded);
  EXPECT_NE(verdict.cause.find("i2q"), std::string::npos) << verdict.cause;

  signals.i2q_p99_ms = 500.0;  // past 4x target
  verdict = EvaluateHealth(signals, options);
  EXPECT_EQ(verdict.state, HealthState::kCritical);
  EXPECT_NE(verdict.cause.find("i2q"), std::string::npos) << verdict.cause;

  // An empty i2q series never trips the SLO rule, whatever the stale value.
  signals.has_i2q = false;
  EXPECT_EQ(EvaluateHealth(signals, options).state, HealthState::kOk);
}

TEST(ObsHealthTest, WorstRuleWinsAndAllBreachedRulesAreNamed) {
  HealthOptions options;
  options.i2q_p99_target_ms = 100.0;
  options.frontier_lag_epochs = 8;
  HealthSignals signals;
  signals.has_i2q = true;
  signals.i2q_p99_ms = 150.0;             // DEGRADED
  signals.frontier_lag = 100;             // CRITICAL (past 8 * 4)
  const HealthVerdict verdict = EvaluateHealth(signals, options);
  EXPECT_EQ(verdict.state, HealthState::kCritical);
  EXPECT_NE(verdict.cause.find("i2q"), std::string::npos) << verdict.cause;
  EXPECT_NE(verdict.cause.find("frontier_lag"), std::string::npos)
      << verdict.cause;
}

TEST(ObsHealthTest, ShedAndCorruptRatesNeedTrafficToTrip) {
  HealthOptions options;
  options.shed_rate = 0.01;
  HealthSignals signals;
  // Zero frames: no rate is computable, the rule must not divide by zero
  // or trip on a silent server.
  signals.shed = 5;
  EXPECT_EQ(EvaluateHealth(signals, options).state, HealthState::kOk);
  // 5% shed over real traffic: degraded.
  signals.frames = 100;
  const HealthVerdict verdict = EvaluateHealth(signals, options);
  EXPECT_EQ(verdict.state, HealthState::kCritical);  // 5% >= 4 * 1%
  EXPECT_NE(verdict.cause.find("shed_rate"), std::string::npos)
      << verdict.cause;
}

TEST(ObsHealthTest, StaleStatsPushTripsOnlyWhenArmed) {
  HealthOptions options;
  options.stale_after_ns = 1000;
  HealthSignals signals;
  signals.age_ns = 5000;
  EXPECT_EQ(EvaluateHealth(signals, options).state, HealthState::kCritical);
  options.stale_after_ns = 0;  // local snapshots have no push to age
  EXPECT_EQ(EvaluateHealth(signals, options).state, HealthState::kOk);
}

TEST(ObsHealthTest, SignalsFromSnapshotReadsTheSyntheticNetSeries) {
  MetricsRegistry registry;
  registry.GetHistogram("ingest_to_queryable_ns")->Record(2000000);  // ~2ms
  MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  snapshot.counters.emplace_back("net_frames_received", 200);
  snapshot.counters.emplace_back("net_frames_shed", 3);
  snapshot.counters.emplace_back("net_corrupt_frames_rejected", 1);
  snapshot.gauges.emplace_back("net_frontier_epoch", 5);
  snapshot.gauges.emplace_back("net_pending_epochs", 7);

  const HealthSignals signals = SignalsFromSnapshot(snapshot, 12, 42);
  EXPECT_TRUE(signals.has_i2q);
  // 2ms lands in the (2^20, 2^21] bucket; p99 reads its upper bound.
  EXPECT_NEAR(signals.i2q_p99_ms, 2.097, 0.01);
  EXPECT_EQ(signals.frames, 200u);
  EXPECT_EQ(signals.shed, 3u);
  EXPECT_EQ(signals.corrupt, 1u);
  EXPECT_EQ(signals.frontier_lag, 7u);  // 12 - 5
  EXPECT_EQ(signals.spool_depth, 7u);
  EXPECT_EQ(signals.age_ns, 42u);
}

TEST(ObsHealthTest, VerdictJsonShape) {
  HealthVerdict verdict;
  EXPECT_EQ(HealthVerdictToJson(verdict), "{\"state\":\"OK\",\"cause\":\"\"}");
  verdict.state = HealthState::kDegraded;
  verdict.cause = "i2q p99 300 ms >= 250 ms";
  const std::string json = HealthVerdictToJson(verdict);
  EXPECT_NE(json.find("\"state\":\"DEGRADED\""), std::string::npos) << json;
  EXPECT_NE(json.find("i2q p99 300 ms"), std::string::npos) << json;
}

TEST(ObsEventsTest, RingBoundDropAccountingAndJsonl) {
  EventLog log;
  ObsEvent event;
  event.kind = "health_transition";
  event.region_id = 3;
  event.from = "OK";
  event.to = "DEGRADED";
  event.cause = "i2q p99 breached";
  log.Record(event);
  EXPECT_EQ(log.size(), 1u);
  const std::vector<ObsEvent> events = log.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GT(events[0].unix_ns, 0u);  // stamped by Record
  EXPECT_EQ(events[0].kind, "health_transition");

  // Flood past capacity: the ring keeps the newest kCapacity and counts
  // the scrolled-off ones, so a consumer can tell quiet from wrapped.
  for (size_t i = 0; i < EventLog::kCapacity + 10; ++i) {
    ObsEvent flood;
    flood.kind = "flood";
    flood.cause = std::to_string(i);
    log.Record(std::move(flood));
  }
  EXPECT_EQ(log.size(), EventLog::kCapacity);
  EXPECT_EQ(log.total_recorded(), EventLog::kCapacity + 11);
  EXPECT_EQ(log.dropped(), 11u);
  EXPECT_EQ(log.Collect().back().cause,
            std::to_string(EventLog::kCapacity + 9));

  // One JSON object per line, oldest first; the array form wraps the same
  // objects.
  const std::string jsonl = log.ToJsonl();
  EXPECT_EQ(static_cast<size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            EventLog::kCapacity);
  EXPECT_EQ(log.ToJsonArray().front(), '[');
}

TEST(ObsEventsTest, JsonEscapesAndControlBytesStayOneLine) {
  ObsEvent event;
  event.kind = "reconnect";
  event.cause = "peer said \"busy\"\nretrying\tlater";
  const std::string json = EventToJson(event);
  // Quotes and backslashes escape; control bytes (newline, tab) must not
  // survive verbatim or a JSONL consumer's line framing breaks.
  EXPECT_NE(json.find("\\\"busy\\\""), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  EXPECT_EQ(json.find('\t'), std::string::npos) << json;
}

}  // namespace
}  // namespace ldpjs
