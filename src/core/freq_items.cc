#include "core/freq_items.h"

#include <algorithm>

namespace ldpjs {

std::unordered_set<uint64_t> FindFrequentItems(
    const LdpJoinSketchServer& sketch, uint64_t domain, double threshold) {
  std::unordered_set<uint64_t> items;
  for (uint64_t d = 0; d < domain; ++d) {
    if (sketch.FrequencyEstimate(d) > threshold) items.insert(d);
  }
  return items;
}

std::unordered_set<uint64_t> FindFrequentItemsUnion(
    const LdpJoinSketchServer& sketch_a, const LdpJoinSketchServer& sketch_b,
    uint64_t domain, double threshold_a, double threshold_b) {
  std::unordered_set<uint64_t> items;
  for (uint64_t d = 0; d < domain; ++d) {
    if (sketch_a.FrequencyEstimate(d) > threshold_a ||
        sketch_b.FrequencyEstimate(d) > threshold_b) {
      items.insert(d);
    }
  }
  return items;
}

double EstimateFrequentMass(const LdpJoinSketchServer& sketch,
                            const std::unordered_set<uint64_t>& items,
                            double scale) {
  double mass = 0.0;
  for (uint64_t d : items) {
    mass += std::max(0.0, sketch.FrequencyEstimate(d));
  }
  return mass * scale;
}

}  // namespace ldpjs
