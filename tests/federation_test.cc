// Federated aggregation tier end-to-end: the acceptance bar is that a
// 2-tier federated estimate — N regional FrameServers shipping raw-lane
// epoch snapshots (EPOCH_PUSH) to a central aggregator — is bit-identical
// to single-node ingestion of the union of all client streams, for any
// region count, epoch schedule, shard count per tier, and mid-epoch
// regional disconnect/retry. Linear sketches make aggregation topology a
// pure throughput decision; these tests pin that it can never change an
// answer.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "core/join_methods.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "federation/central_node.h"
#include "federation/epoch_scheduler.h"
#include "federation/regional_node.h"
#include "net/frame_sender.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 21) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<LdpReport> PerturbColumn(const LdpJoinSketchClient& client,
                                     size_t n, uint64_t seed) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 2654435761u) % 1000;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  client.PerturbBatch(values, reports, rng);
  return reports;
}

// The acceptance sweep: 2 regions × shards {1, 4} × both join methods,
// with an epoch schedule that cuts ≥ 3 epochs per region mid-stream. The
// federated estimate must equal the in-process estimate bit for bit.
TEST(FederationTest, FederatedEstimateBitIdenticalForShardsAndMethods) {
  const JoinWorkload workload = MakeZipfWorkload(1.3, 5000, 30000, /*seed=*/5);
  for (const JoinMethod method :
       {JoinMethod::kLdpJoinSketch, JoinMethod::kLdpJoinSketchPlus}) {
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      JoinMethodConfig config;
      config.epsilon = 2.0;
      config.sketch = TestParams();
      config.run_seed = 77;
      config.num_shards = shards;

      config.num_regions = 0;
      const double in_process =
          EstimateJoin(method, workload.table_a, workload.table_b, config)
              .estimate;

      config.num_regions = 2;
      // 30000 rows = 8 ingest blocks, 4 per region; cutting after every
      // block gives each region ≥ 4 epochs (incl. the final flush).
      config.epoch_reports = kIngestBlockSize;
      const double federated =
          EstimateJoin(method, workload.table_a, workload.table_b, config)
              .estimate;
      EXPECT_EQ(federated, in_process)
          << "method=" << JoinMethodName(method) << " shards=" << shards;
    }
  }
}

// A mid-epoch disconnect: the central cuts the region's upstream session
// between two epochs; the next ship fails on the dead socket, reconnects,
// and re-pushes — and the final central sketch still equals a direct
// absorb of every report, bit for bit, with nothing lost or doubled.
TEST(FederationTest, MidEpochDisconnectRetriesToExactlyOnce) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  std::vector<std::vector<LdpReport>> partitions;
  for (size_t p = 0; p < 3; ++p) {
    partitions.push_back(PerturbColumn(client, 6000, 40 + p));
  }

  CentralNodeOptions central_options;
  central_options.server.num_shards = 2;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  RegionalNodeOptions region_options;
  region_options.region_id = 7;
  region_options.central_port = central.port();
  region_options.server.num_shards = 2;
  region_options.ship_backoff = {.base_micros = 1000, .cap_micros = 4000};
  RegionalNode region(params, epsilon, region_options);
  ASSERT_TRUE(region.Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", region.port(), params, epsilon);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();

  // Epoch 0 ships cleanly and leaves a persistent upstream session.
  ASSERT_TRUE(sender->SendReports(partitions[0]).ok());
  ASSERT_TRUE(sender->SnapshotRawSketch().ok());  // ingest barrier
  ASSERT_TRUE(region.CutAndShip().ok());
  EXPECT_EQ(region.epochs_shipped(), 1u);

  // The central can answer estimates at the epoch boundary without
  // stopping collection.
  EXPECT_EQ(central.FinalizedView().total_reports(), partitions[0].size());

  // Chaos: the central kicks every client, killing the region's upstream
  // session mid-collection.
  central.server_mutable().DisconnectClients();

  // Epoch 1: the first push attempt rides the dead socket and fails; the
  // shipper reconnects and re-pushes the same epoch.
  ASSERT_TRUE(sender->SendReports(partitions[1]).ok());
  ASSERT_TRUE(sender->SnapshotRawSketch().ok());
  ASSERT_TRUE(region.CutAndShip().ok());
  EXPECT_EQ(region.epochs_shipped(), 2u);
  EXPECT_GE(region.ship_retries(), 1u);

  // Epoch 2 rides the final flush.
  ASSERT_TRUE(sender->SendReports(partitions[2]).ok());
  ASSERT_TRUE(sender->Finish().ok());
  ASSERT_TRUE(region.FlushAndStop().ok());
  EXPECT_EQ(region.pending_snapshots(), 0u);

  central.Stop();
  const NetMetrics metrics = central.metrics();
  LdpJoinSketchServer federated = central.Finalize();

  LdpJoinSketchServer direct(params, epsilon);
  size_t total = 0;
  for (const auto& partition : partitions) {
    direct.AbsorbBatch(partition);
    total += partition.size();
  }
  direct.Finalize();
  EXPECT_EQ(federated.Serialize(), direct.Serialize());
  EXPECT_EQ(federated.total_reports(), total);

  ASSERT_EQ(metrics.regions.size(), 1u);
  EXPECT_EQ(metrics.regions[0].region_id, 7u);
  EXPECT_EQ(metrics.regions[0].epochs_applied, 3u);
  EXPECT_EQ(metrics.regions[0].reports_merged, total);
}

// A retried push whose original WAS applied (the ack got lost, not the
// push) must resolve as a duplicate: the central dedups on (region, epoch)
// and never double-merges.
TEST(FederationTest, DuplicateEpochPushIsDedupedExactlyOnce) {
  const SketchParams params = TestParams();
  const double epsilon = 1.5;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 5000, 9);
  LdpJoinSketchServer epoch_sketch(params, epsilon);
  epoch_sketch.AbsorbBatch(reports);
  const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();

  CentralNodeOptions options;
  options.server.num_shards = 3;
  CentralNode central(params, epsilon, options);
  ASSERT_TRUE(central.Start().ok());
  auto sender =
      FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());

  auto first = sender->PushEpochSnapshot(3, 0, snapshot);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, EpochPushAckCode::kApplied);
  EXPECT_EQ(first->next_epoch, 1u);  // the ack carries the high-water sync
  auto replay = sender->PushEpochSnapshot(3, 0, snapshot);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->code, EpochPushAckCode::kDuplicate);  // ignored
  EXPECT_EQ(replay->next_epoch, 1u);
  auto second = sender->PushEpochSnapshot(3, 1, snapshot);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->code, EpochPushAckCode::kApplied);
  EXPECT_EQ(second->next_epoch, 2u);
  ASSERT_TRUE(sender->Finish().ok());

  central.Stop();
  const NetMetrics metrics = central.metrics();
  LdpJoinSketchServer merged = central.Finalize();

  // Exactly two applications of the snapshot — not three.
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  EXPECT_EQ(merged.Serialize(), direct.Serialize());
  ASSERT_EQ(metrics.regions.size(), 1u);
  EXPECT_EQ(metrics.regions[0].epochs_applied, 2u);
  EXPECT_EQ(metrics.regions[0].duplicates_ignored, 1u);
  EXPECT_EQ(metrics.epoch_duplicates_ignored, 1u);
}

// A pushed sketch with mismatched params (or garbage bytes) must be
// rejected before touching a lane, and the central must survive.
TEST(FederationTest, CorruptOrMismatchedPushesRejected) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  CentralNodeOptions options;
  CentralNode central(params, epsilon, options);
  ASSERT_TRUE(central.Start().ok());

  {  // Garbage sketch bytes.
    auto sender =
        FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
    ASSERT_TRUE(sender.ok());
    const std::vector<uint8_t> garbage(64, 0xCD);
    auto pushed = sender->PushEpochSnapshot(1, 0, garbage);
    EXPECT_FALSE(pushed.ok());
  }
  {  // Valid sketch, wrong shape: the session params match, the pushed
     // sketch's do not.
    SketchParams other = TestParams(/*k=*/4, /*m=*/128);
    LdpJoinSketchServer wrong(other, epsilon);
    auto sender =
        FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
    ASSERT_TRUE(sender.ok());
    auto pushed = sender->PushEpochSnapshot(1, 0, wrong.Serialize());
    EXPECT_FALSE(pushed.ok());
    EXPECT_EQ(pushed.status().code(), StatusCode::kFailedPrecondition);
  }

  // The central still takes a well-formed push afterwards.
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 3000, 2);
  LdpJoinSketchServer epoch_sketch(params, epsilon);
  epoch_sketch.AbsorbBatch(reports);
  auto sender =
      FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());
  auto pushed = sender->PushEpochSnapshot(2, 0, epoch_sketch.Serialize());
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  ASSERT_TRUE(sender->Finish().ok());
  central.Stop();
  const NetMetrics metrics = central.metrics();
  EXPECT_EQ(metrics.epochs_applied, 1u);
  EXPECT_GE(metrics.corrupt_frames_rejected, 1u);
  LdpJoinSketchServer merged = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  EXPECT_EQ(merged.Serialize(), direct.Serialize());
}

// A restarted region (same region_id, fresh process/incarnation) must not
// have its data discarded by the central's high-water dedup: every
// incarnation starts its epochs at 0, and the connect-time sync (HELLO_OK
// carries the central's next-expected epoch) renumbers its un-attempted
// snapshots above everything the predecessor shipped.
TEST(FederationTest, RestartedRegionIncarnationIsNotDeduped) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> first = PerturbColumn(client, 5000, 60);
  const std::vector<LdpReport> second = PerturbColumn(client, 7000, 61);

  CentralNodeOptions central_options;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  RegionalNodeOptions options;
  options.region_id = 5;
  options.central_port = central.port();
  {  // First incarnation ships and dies.
    RegionalNode incarnation1(params, epsilon, options);
    ASSERT_TRUE(incarnation1.Start().ok());
    auto sender = FrameSender::Connect("127.0.0.1", incarnation1.port(),
                                       params, epsilon);
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(sender->SendReports(first).ok());
    ASSERT_TRUE(sender->Finish().ok());
    ASSERT_TRUE(incarnation1.FlushAndStop().ok());
  }
  {  // The "restarted" region: same id, fresh epoch sequence.
    RegionalNode incarnation2(params, epsilon, options);
    ASSERT_TRUE(incarnation2.Start().ok());
    auto sender = FrameSender::Connect("127.0.0.1", incarnation2.port(),
                                       params, epsilon);
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(sender->SendReports(second).ok());
    ASSERT_TRUE(sender->Finish().ok());
    ASSERT_TRUE(incarnation2.FlushAndStop().ok());
    EXPECT_EQ(incarnation2.duplicate_acks(), 0u);  // nothing deduped away
    // The second incarnation numbered its cut 0 too — the connect-time
    // sync renumbered it above the predecessor's epochs instead of letting
    // the central discard it as a duplicate.
    EXPECT_EQ(incarnation2.epochs_renumbered(), 1u);
    EXPECT_EQ(incarnation2.next_epoch(), 2u);
  }

  central.Stop();
  LdpJoinSketchServer merged = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(first);
  direct.AbsorbBatch(second);
  direct.Finalize();
  EXPECT_EQ(merged.Serialize(), direct.Serialize());
}

// A region's forwarded FINALIZE counts once per region no matter how many
// times a lost-ack retry resends it, so a flaky region cannot end a
// multi-region collection early.
TEST(FederationTest, RegionTaggedFinalizeCountsOncePerRegion) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> two_regions_done{false};
  std::thread waiter([&] {
    server.WaitForFinalizeRequests(2);
    two_regions_done.store(true);
  });

  auto finalize_as = [&](uint32_t region) {
    auto sender =
        FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(sender->RequestFinalizeAsRegion(region).ok());
  };
  finalize_as(0);
  finalize_as(0);  // the retry after a lost FINALIZE_OK
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(two_regions_done.load());  // one region ≠ two regions
  finalize_as(1);
  waiter.join();
  EXPECT_TRUE(two_regions_done.load());
  server.Stop();
}

// The advertised payload bound must really cover a well-formed push, and
// must be derived from the live serializer (not a hand-copied layout).
TEST(FederationTest, EpochPushPayloadBoundCoversRealPushes) {
  SketchParams params = TestParams(/*k=*/18, /*m=*/4096);
  const double epsilon = 2.0;
  LdpJoinSketchServer sketch(params, epsilon);
  const std::vector<uint8_t> payload =
      EncodeEpochPush(9, 1234, sketch.Serialize());
  EXPECT_LE(payload.size(), EpochPushPayloadBound(params));
}

// The scheduler fires periodically on its own thread, coalesces manual
// triggers, and never ticks after Stop.
TEST(FederationTest, EpochSchedulerPeriodicAndManual) {
  std::atomic<uint64_t> ticks{0};
  {
    EpochScheduler periodic(std::chrono::milliseconds(5),
                            [&](uint64_t) { ++ticks; });
    periodic.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    periodic.Stop();
  }
  EXPECT_GE(ticks.load(), 3u);

  std::vector<uint64_t> fired;
  EpochScheduler manual(std::chrono::milliseconds(0),
                        [&](uint64_t epoch) { fired.push_back(epoch); });
  manual.Start();
  manual.TriggerNow();
  manual.TriggerNow();
  manual.TriggerNow();
  manual.Stop();
  // TriggerNow is synchronous: all three ticks ran, in order, on the
  // scheduler thread (no data race on `fired`).
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 0u);
  EXPECT_EQ(fired[2], 2u);
}

// An unreachable central exhausts the attempt budget with a clean
// Unavailable — and the snapshots stay pending, resuming (nothing lost)
// once the central exists.
TEST(FederationTest, UnreachableCentralRetainsSnapshotsAndResumes) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 4000, 13);

  // Reserve an ephemeral port for the central, then free it — the region
  // targets a port where nothing listens yet (SO_REUSEADDR makes the later
  // rebind reliable).
  uint16_t central_port = 0;
  {
    auto probe = Socket::ListenTcp(0);
    ASSERT_TRUE(probe.ok());
    central_port = probe->local_port();
  }

  RegionalNodeOptions options;
  options.region_id = 1;
  options.central_port = central_port;
  options.max_ship_attempts = 2;
  options.ship_backoff = {.base_micros = 1000, .cap_micros = 4000};
  RegionalNode region(params, epsilon, options);
  ASSERT_TRUE(region.Start().ok());
  auto sender =
      FrameSender::Connect("127.0.0.1", region.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(sender->SendReports(reports).ok());
  ASSERT_TRUE(sender->Finish().ok());

  const Status flush = region.FlushAndStop();
  EXPECT_EQ(flush.code(), StatusCode::kUnavailable);
  EXPECT_EQ(region.pending_snapshots(), 1u);
  EXPECT_EQ(region.epochs_shipped(), 0u);

  // The central comes up on that port; a second FlushAndStop resumes the
  // retained snapshot — delayed, never lost.
  CentralNodeOptions central_options;
  central_options.server.port = central_port;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());
  ASSERT_TRUE(region.FlushAndStop().ok());
  EXPECT_EQ(region.pending_snapshots(), 0u);
  EXPECT_EQ(region.epochs_shipped(), 1u);

  central.Stop();
  LdpJoinSketchServer merged = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  EXPECT_EQ(merged.Serialize(), direct.Serialize());
}

}  // namespace
}  // namespace ldpjs
