#include "common/crc32c.h"

#include <array>

namespace ldpjs {

namespace {

/// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected 0x82F63B78),
/// built once at first use.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78U : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> bytes, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  uint32_t crc = ~seed;
  for (const uint8_t byte : bytes) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ldpjs
