#include "common/fault_injector.h"

#include <algorithm>

#include "common/random.h"

namespace ldpjs {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kPartialWrite: return "partial-write";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDisconnect: return "disconnect";
    case FaultKind::kRefuseConnect: return "refuse-connect";
  }
  return "unknown";
}

namespace {

/// FNV-1a over the site name: stable across runs and platforms, which is
/// what makes the seeded schedule a pure function of (seed, site, hit).
uint64_t SiteHash(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool EndsWith(std::string_view site, std::string_view suffix) {
  return site.size() >= suffix.size() &&
         site.substr(site.size() - suffix.size()) == suffix;
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed, double rate, uint64_t max_faults)
    : seed_(seed),
      rate_bits_(static_cast<uint64_t>(
          std::clamp(rate, 0.0, 1.0) * 4294967296.0)),
      max_faults_(max_faults),
      seeded_(true) {}

void FaultInjector::AddRule(std::string site, uint64_t hit, FaultKind kind,
                            uint64_t param) {
  MutexLock lock(mu_);
  rules_[std::move(site)].push_back(Rule{hit, kind, param});
}

FaultAction FaultInjector::ScheduledAction(std::string_view site,
                                          uint64_t site_hash,
                                          uint64_t hit) const {
  // One well-mixed draw decides fire/kind/param for this (site, hit):
  // pure in (seed, site, hit), so replays are bit-exact.
  const uint64_t r = Mix64(seed_ ^ Mix64(site_hash ^ (hit * 0x9E3779B97F4A7C15ULL)));
  if ((r & 0xFFFFFFFFULL) >= rate_bits_) return {};
  const uint64_t pick = r >> 32;
  FaultAction action;
  if (EndsWith(site, ".connect")) {
    action.kind = FaultKind::kRefuseConnect;
  } else if (EndsWith(site, ".recv")) {
    // A receiver can stall (delay) or die (disconnect); corrupting its
    // inbound copy would diverge it from what the peer actually sent.
    action.kind = (pick % 2 == 0) ? FaultKind::kDelay : FaultKind::kDisconnect;
  } else {
    switch (pick % 5) {
      case 0: action.kind = FaultKind::kDrop; break;
      case 1: action.kind = FaultKind::kDelay; break;
      case 2: action.kind = FaultKind::kPartialWrite; break;
      case 3: action.kind = FaultKind::kCorrupt; break;
      default: action.kind = FaultKind::kDisconnect; break;
    }
  }
  // Delay millis 1..4 (short enough never to trip a receive deadline on
  // its own). The scheduled corrupt index stays inside the 5-byte LJSP
  // transport header (byte index mod the buffer at the site): a mangled
  // length or type is always rejected by the peer's framing layer, so the
  // fault forces a retry — whereas a flipped byte deep in a sketch payload
  // would merge silently and (deliberately, detectably) break the chaos
  // suite's bit-identity pin. Explicit rules can still target any byte.
  switch (action.kind) {
    case FaultKind::kDelay: action.param = 1 + (pick / 8) % 4; break;
    case FaultKind::kCorrupt: action.param = (pick / 8) % 5; break;
    default: action.param = pick / 8; break;
  }
  return action;
}

FaultAction FaultInjector::Next(std::string_view site) {
  MutexLock lock(mu_);
  auto [it, inserted] = sites_.try_emplace(std::string(site));
  FaultSiteStats& stats = it->second;
  const uint64_t hit = stats.hits++;

  // Targeted rules first: a test pinning one exact failure must not race
  // the seeded schedule for the slot.
  if (auto rules_it = rules_.find(site); rules_it != rules_.end()) {
    for (const Rule& rule : rules_it->second) {
      if (rule.hit == hit) {
        ++stats.injected;
        return FaultAction{rule.kind, rule.param};
      }
    }
  }
  if (seeded_ && scheduled_injected_ < max_faults_) {
    const FaultAction action = ScheduledAction(site, SiteHash(site), hit);
    if (action.kind != FaultKind::kNone) {
      ++stats.injected;
      ++scheduled_injected_;
      return action;
    }
  }
  return {};
}

uint64_t FaultInjector::total_hits() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, stats] : sites_) total += stats.hits;
  return total;
}

uint64_t FaultInjector::total_injected() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, stats] : sites_) total += stats.injected;
  return total;
}

std::map<std::string, FaultSiteStats> FaultInjector::site_stats() const {
  MutexLock lock(mu_);
  return {sites_.begin(), sites_.end()};
}

std::string FaultInjector::StatsString() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [site, stats] : sites_) {
    if (!out.empty()) out += ' ';
    out += site;
    out += '=';
    out += std::to_string(stats.hits);
    out += '/';
    out += std::to_string(stats.injected);
  }
  return out;
}

void FaultInjector::Install(FaultInjector* injector) {
  active_.store(injector, std::memory_order_release);
}

}  // namespace ldpjs
