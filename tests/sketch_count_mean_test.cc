#include "sketch/count_mean.h"

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/gaussian.h"

namespace ldpjs {
namespace {

TEST(CountMeanTest, SingleValueExact) {
  CountMeanSketch s(1, 5, 64);
  for (int i = 0; i < 50; ++i) s.Update(9);
  // Only one distinct value: no collision mass to misattribute, but the
  // debias subtracts n/m from every row, so estimate ≈ (50 - 50/64)*64/63.
  EXPECT_NEAR(s.FrequencyEstimate(9), 50.0, 1e-9);
}

TEST(CountMeanTest, TotalCountTracksUpdates) {
  CountMeanSketch s(1, 3, 16);
  Column c({0, 1, 2, 3}, 8);
  s.UpdateColumn(c);
  EXPECT_EQ(s.total_count(), 4u);
}

TEST(CountMeanTest, AbsentValueNearZero) {
  CountMeanSketch s(3, 7, 512);
  const JoinWorkload w = MakeZipfWorkload(1.3, 1000, 20000, 7);
  s.UpdateColumn(w.table_a);
  // Value beyond the populated range: expectation 0, tolerance a few
  // collision widths n/m.
  EXPECT_NEAR(s.FrequencyEstimate(999), 0.0, 400.0);
}

TEST(CountMeanTest, HeavyItemTracked) {
  CountMeanSketch s(5, 7, 1024);
  const JoinWorkload w = MakeZipfWorkload(1.5, 2000, 50000, 9);
  s.UpdateColumn(w.table_a);
  const auto freq = w.table_a.Frequencies();
  EXPECT_NEAR(s.FrequencyEstimate(0) / static_cast<double>(freq[0]), 1.0, 0.1);
}

TEST(CountMeanTest, EstimatesSumApproximatelyToTotal) {
  // Uniform data: heavy-item collision variance is absent, so the debiased
  // estimates must sum back to n closely. A single hash draw still moves
  // the sum by a few percent (collision-count fluctuation), so average the
  // ratio over several sketch seeds to keep the check seed-robust.
  const Column c = GenerateUniform(300, 30000, 11);
  double ratio = 0;
  const int kSeeds = 3;
  for (uint64_t seed = 11; seed < 11 + kSeeds; ++seed) {
    CountMeanSketch s(seed, 5, 1024);
    s.UpdateColumn(c);
    double sum = 0;
    for (uint64_t d = 0; d < 300; ++d) sum += s.FrequencyEstimate(d);
    ratio += sum / 30000.0;
  }
  EXPECT_NEAR(ratio / kSeeds, 1.0, 0.05);
}

TEST(CountMeanDeathTest, RequiresAtLeastTwoColumns) {
  EXPECT_DEATH(CountMeanSketch(1, 3, 1), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
