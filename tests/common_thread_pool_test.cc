#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ldpjs {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const size_t total = 10007;  // prime, exercises uneven shards
  std::vector<std::atomic<int>> touched(total);
  pool.ParallelFor(total, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < total; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForShardsAreContiguousAndOrdered) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, std::pair<size_t, size_t>>> shards;
  pool.ParallelFor(1000, [&](size_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    shards.push_back({shard, {begin, end}});
  });
  ASSERT_LE(shards.size(), 4u);
  std::sort(shards.begin(), shards.end());
  size_t expected_begin = 0;
  for (const auto& [shard, range] : shards) {
    EXPECT_EQ(range.first, expected_begin);
    expected_begin = range.second;
  }
  EXPECT_EQ(expected_begin, 1000u);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](size_t, size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const size_t n = 100000;
  std::vector<uint64_t> data(n);
  std::iota(data.begin(), data.end(), 0);
  std::vector<uint64_t> partial(pool.num_threads(), 0);
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) partial[shard] += data[i];
  });
  uint64_t total = 0;
  for (uint64_t p : partial) total += p;
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace ldpjs
