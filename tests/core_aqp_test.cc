#include "core/aqp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

namespace ldpjs {
namespace {

struct AqpFixture {
  AqpFixture() : workload(MakeZipfWorkload(1.5, 2000, 200000, 3)) {
    SketchParams params;
    params.k = 18;
    params.m = 1024;
    params.seed = 17;
    SimulationOptions sim;
    sim.run_seed = 5;
    sketch_a = std::make_unique<LdpJoinSketchServer>(
        BuildLdpJoinSketch(workload.table_a, params, 4.0, sim));
    sim.run_seed = 6;
    sketch_b = std::make_unique<LdpJoinSketchServer>(
        BuildLdpJoinSketch(workload.table_b, params, 4.0, sim));
  }

  JoinWorkload workload;
  std::unique_ptr<LdpJoinSketchServer> sketch_a;
  std::unique_ptr<LdpJoinSketchServer> sketch_b;
};

TEST(AqpTest, RangeCountTracksSelectiveRange) {
  AqpFixture fx;
  // The head of the zipf distribution: a selective, heavy range.
  const ValueRange range{0, 19};
  const auto freq = fx.workload.table_a.Frequencies();
  double truth = 0;
  for (uint64_t d = range.lo; d <= range.hi; ++d) {
    truth += static_cast<double>(freq[d]);
  }
  const double est = RangeCountEstimate(*fx.sketch_a, range);
  EXPECT_NEAR(est / truth, 1.0, 0.1);
}

TEST(AqpTest, FullDomainRangeCountSumsToTableSize) {
  AqpFixture fx;
  const ValueRange range{0, fx.workload.table_a.domain() - 1};
  const double est = RangeCountEstimate(*fx.sketch_a, range);
  EXPECT_NEAR(est / static_cast<double>(fx.workload.table_a.size()), 1.0,
              0.15);
}

TEST(AqpTest, WeightedSumMatchesManualAccumulation) {
  AqpFixture fx;
  const ValueRange range{0, 9};
  auto weight = [](uint64_t d) { return static_cast<double>(d) + 1.0; };
  double manual = 0;
  for (uint64_t d = range.lo; d <= range.hi; ++d) {
    manual += weight(d) * fx.sketch_a->FrequencyEstimate(d);
  }
  EXPECT_NEAR(RangeWeightedSumEstimate(*fx.sketch_a, range, weight), manual,
              1e-9);
}

TEST(AqpTest, PredicateJoinTracksRestrictedTruth) {
  AqpFixture fx;
  const ValueRange range{0, 19};
  const auto fa = fx.workload.table_a.Frequencies();
  const auto fb = fx.workload.table_b.Frequencies();
  double truth = 0;
  for (uint64_t d = range.lo; d <= range.hi; ++d) {
    truth += static_cast<double>(fa[d]) * static_cast<double>(fb[d]);
  }
  const double est = PredicateJoinEstimate(*fx.sketch_a, *fx.sketch_b, range);
  EXPECT_NEAR(est / truth, 1.0, 0.15);
}

TEST(AqpTest, PredicateJoinOverFullDomainApproximatesJoinEstimate) {
  AqpFixture fx;
  const ValueRange range{0, fx.workload.table_a.domain() - 1};
  const double truth = ExactJoinSize(fx.workload.table_a, fx.workload.table_b);
  const double accumulated =
      PredicateJoinEstimate(*fx.sketch_a, *fx.sketch_b, range);
  // Accumulation over the whole domain is noisier than the sketch product
  // but must be in the same ballpark on skewed data.
  EXPECT_NEAR(accumulated / truth, 1.0, 0.5);
}

TEST(AqpTest, SupportSizeWithNoiseFloorOnPlantedSupport) {
  // 50 planted values well above the noise floor, the rest absent. (On
  // heavily skewed data, collisions with the top item inject spikes of
  // ~f_max/k into arbitrary values, so support estimation is only reliable
  // when the queried frequencies clear both the noise floor and the
  // heavy-collision scale — exactly the planted setting here.)
  const uint64_t domain = 2000;
  const size_t per_value = 4000;
  std::vector<uint64_t> values;
  values.reserve(50 * per_value);
  for (uint64_t v = 0; v < 50; ++v) {
    for (size_t i = 0; i < per_value; ++i) values.push_back(v * 7 + 3);
  }
  Column column(std::move(values), domain);
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 23;
  SimulationOptions sim;
  sim.run_seed = 29;
  const LdpJoinSketchServer sketch =
      BuildLdpJoinSketch(column, params, 4.0, sim);
  const double floor = NoiseFloorSuggestion(sketch);
  ASSERT_LT(floor, static_cast<double>(per_value));
  const uint64_t est =
      SupportSizeEstimate(sketch, ValueRange{0, domain - 1}, floor);
  EXPECT_NEAR(static_cast<double>(est), 50.0, 10.0);
}

TEST(AqpTest, NoiseFloorGrowsWithReports) {
  SketchParams params;
  params.k = 4;
  params.m = 64;
  LdpJoinSketchServer small(params, 2.0), big(params, 2.0);
  LdpJoinSketchClient client(params, 2.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) small.Absorb(client.Perturb(1, rng));
  for (int i = 0; i < 10000; ++i) big.Absorb(client.Perturb(1, rng));
  EXPECT_GT(NoiseFloorSuggestion(big), NoiseFloorSuggestion(small));
}

TEST(AqpDeathTest, InvalidRangeAborts) {
  AqpFixture fx;
  EXPECT_DEATH(RangeCountEstimate(*fx.sketch_a, ValueRange{5, 4}),
               "LDPJS_CHECK failed");
}

TEST(AqpDeathTest, UnfinalizedSketchAborts) {
  SketchParams params;
  params.k = 2;
  params.m = 64;
  LdpJoinSketchServer server(params, 1.0);
  EXPECT_DEATH(RangeCountEstimate(server, ValueRange{0, 1}),
               "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
