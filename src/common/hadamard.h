// Hadamard transform utilities (paper §III-C).
//
// H_m is the order-m Sylvester Hadamard matrix, m a power of two, with
// entries H_m[i][j] = (-1)^{popcount(i & j)}. Two access patterns are
// provided:
//   * HadamardEntry(i, j): one entry in O(1) — this is what makes the
//     LDPJoinSketch client O(1) instead of O(m log m);
//   * FastWalshHadamardTransform: in-place O(m log m) transform of a vector,
//     used by the server to rotate whole sketch rows back (Alg. 2 line 6).
#ifndef LDPJS_COMMON_HADAMARD_H_
#define LDPJS_COMMON_HADAMARD_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace ldpjs {

/// True iff m is a power of two (valid Hadamard order), m >= 1.
constexpr bool IsPowerOfTwo(uint64_t m) {
  return m != 0 && (m & (m - 1)) == 0;
}

/// Entry H_m[i][j] in {-1, +1} for the Sylvester construction.
/// Requires i, j < m (unchecked; callers are hot loops).
inline int HadamardEntry(uint64_t i, uint64_t j) {
  return (std::popcount(i & j) & 1) ? -1 : +1;
}

/// In-place fast Walsh-Hadamard transform: data <- data * H_m (H_m is
/// symmetric, so this is also H_m * data for column vectors).
/// Requires data.size() to be a power of two.
void FastWalshHadamardTransform(std::span<double> data);

/// Reference O(m^2) transform used to validate the fast path in tests.
std::vector<double> NaiveHadamardTransform(const std::vector<double>& data);

/// Explicitly materialized H_m (tests and documentation only; O(m^2) memory).
std::vector<std::vector<int>> MakeHadamardMatrix(uint64_t m);

}  // namespace ldpjs

#endif  // LDPJS_COMMON_HADAMARD_H_
