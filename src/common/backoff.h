// Capped exponential backoff with decorrelated jitter, plus the retry
// budget accounting every retry loop in the wire stack shares.
//
// Replaces the fixed-interval sleeps that used to live in FrameSender
// (busy retries) and RegionalNode (ship retries): a fixed interval
// synchronizes every retrying peer into thundering herds against a
// recovering central and wastes the whole interval when the peer comes
// back early. Decorrelated jitter (the AWS "decorrelated" recipe:
// sleep = min(cap, uniform(base, 3 * previous_sleep))) spreads retriers
// apart while still growing the wait exponentially toward the cap.
//
// Determinism: the jitter stream is a seeded Xoshiro256, so a retry
// sequence — and therefore a chaos schedule's retry counters — replays
// bit-exactly from the seed. Production callers that want wall-clock
// entropy can seed from any nonce; the *durations* vary but the retry
// *counts* are driven by peer behavior either way.
#ifndef LDPJS_COMMON_BACKOFF_H_
#define LDPJS_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/random.h"
#include "common/status.h"

namespace ldpjs {

struct BackoffOptions {
  int64_t base_micros = 1000;    ///< first sleep, and the jitter floor
  int64_t cap_micros = 1000000;  ///< no single sleep exceeds this
  uint64_t seed = 0x0BACC0FFULL; ///< jitter stream (deterministic replay)
};

/// One retry loop's backoff state. Next() returns the duration to sleep
/// before the following attempt; SleepNext() sleeps it and accumulates the
/// total, the figure NetMetrics surfaces as cumulative backoff time.
class Backoff {
 public:
  explicit Backoff(const BackoffOptions& options)
      : options_(options), rng_(options.seed) {
    LDPJS_CHECK(options_.base_micros >= 0);
    LDPJS_CHECK(options_.cap_micros >= options_.base_micros);
  }

  /// Next sleep duration: uniform in [base, 3 * previous], capped.
  std::chrono::microseconds Next() {
    const int64_t base = options_.base_micros;
    if (base == 0) return std::chrono::microseconds(0);
    const int64_t ceiling = std::min(options_.cap_micros, 3 * prev_micros_);
    int64_t sleep = base;
    if (ceiling > base) {
      sleep = base + static_cast<int64_t>(
                         rng_.NextBounded(static_cast<uint64_t>(
                             ceiling - base + 1)));
    }
    prev_micros_ = sleep;
    ++attempts_;
    return std::chrono::microseconds(sleep);
  }

  /// Sleep the next interval and fold it into the cumulative total.
  void SleepNext() {
    const std::chrono::microseconds interval = Next();
    total_micros_ += interval.count();
    if (interval.count() > 0) std::this_thread::sleep_for(interval);
  }

  /// Back to the first-attempt state (a success ends the incident; the
  /// next failure starts from base again, not from the old ceiling).
  void Reset() { prev_micros_ = 0; }

  int attempts() const { return attempts_; }
  uint64_t total_micros() const { return total_micros_; }

 private:
  BackoffOptions options_;
  Xoshiro256 rng_;
  int64_t prev_micros_ = 0;
  int attempts_ = 0;
  uint64_t total_micros_ = 0;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_BACKOFF_H_
