#include "common/serialize.h"

namespace ldpjs {

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutBytes(std::span<const uint8_t> bytes) {
  PutU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::PutFrame(std::span<const uint8_t> payload) {
  LDPJS_CHECK(payload.size() <= 0xffffffffULL);
  PutU32(static_cast<uint32_t>(payload.size()));
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
}

namespace {

/// Shared length-prefixed codec for vectors of 8-byte elements, so the
/// length guard and loop exist once for every element type.
template <typename T, typename PutElem>
void PutVector64(BinaryWriter& writer, std::span<const T> values,
                 const PutElem& put) {
  writer.PutU64(values.size());
  for (const T& v : values) put(v);
}

template <typename T, typename GetElem>
Result<std::vector<T>> GetVector64(BinaryReader& reader, const GetElem& get) {
  auto count = reader.GetU64();
  if (!count.ok()) return count.status();
  if (*count > reader.remaining() / 8) {
    return Status::Corruption("vector length exceeds buffer");
  }
  std::vector<T> out;
  out.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto v = get();
    if (!v.ok()) return v.status();
    out.push_back(*v);
  }
  return out;
}

}  // namespace

void BinaryWriter::PutDoubleVector(std::span<const double> values) {
  PutVector64(*this, values, [this](double v) { PutDouble(v); });
}

void BinaryWriter::PutI64Vector(std::span<const int64_t> values) {
  PutVector64(*this, values, [this](int64_t v) { PutI64(v); });
}

Status BinaryReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("truncated buffer: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  LDPJS_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> BinaryReader::GetU32() {
  LDPJS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  LDPJS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  auto v = GetU64();
  if (!v.ok()) return v.status();
  return static_cast<int64_t>(*v);
}

Result<double> BinaryReader::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t b = *bits;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Result<std::vector<double>> BinaryReader::GetDoubleVector() {
  return GetVector64<double>(*this, [this] { return GetDouble(); });
}

Result<std::vector<int64_t>> BinaryReader::GetI64Vector() {
  return GetVector64<int64_t>(*this, [this] { return GetI64(); });
}

Result<std::span<const uint8_t>> BinaryReader::GetRaw(size_t n) {
  LDPJS_RETURN_IF_ERROR(Need(n));
  std::span<const uint8_t> view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

Result<std::span<const uint8_t>> BinaryReader::GetFrame() {
  auto length = GetU32();
  if (!length.ok()) return length.status();
  return GetRaw(*length);
}

}  // namespace ldpjs
