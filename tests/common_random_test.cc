#include "common/random.h"

#include <bit>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ldpjs {
namespace {

TEST(SplitMixTest, DeterministicSequence) {
  uint64_t a = 123, b = 123;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64Next(a), SplitMix64Next(b));
  }
  EXPECT_EQ(a, b);
}

TEST(SplitMixTest, Mix64IsStatelessAndDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(SplitMixTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  double total_flips = 0;
  const int kTrials = 256;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t x = Mix64(static_cast<uint64_t>(t) * 7919);
    const uint64_t y = Mix64((static_cast<uint64_t>(t) * 7919) ^ 1);
    total_flips += std::popcount(x ^ y);
  }
  const double mean_flips = total_flips / kTrials;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(XoshiroTest, DeterministicForSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a();
    EXPECT_EQ(va, b());
    if (va != c()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XoshiroTest, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(2);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.NextDouble();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(XoshiroTest, NextBoundedStaysInRangeAndCoversAll) {
  Xoshiro256 rng(3);
  const uint64_t bound = 10;
  std::vector<int> seen(bound, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBounded(bound);
    ASSERT_LT(v, bound);
    ++seen[v];
  }
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_GT(seen[v], 800) << "value " << v << " under-represented";
    EXPECT_LT(seen[v], 1200) << "value " << v << " over-represented";
  }
}

TEST(XoshiroTest, NextBoundedOneAlwaysZero) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(XoshiroDeathTest, NextBoundedZeroAborts) {
  Xoshiro256 rng(5);
  EXPECT_DEATH(rng.NextBounded(0), "LDPJS_CHECK failed");
}

TEST(XoshiroTest, BernoulliExtremes) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(XoshiroTest, BernoulliMatchesProbability) {
  Xoshiro256 rng(7);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(XoshiroTest, GaussianMoments) {
  Xoshiro256 rng(8);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(DeriveStreamSeedTest, DeterministicAndIndexSensitive) {
  EXPECT_EQ(DeriveStreamSeed(7, 9), DeriveStreamSeed(7, 9));
  EXPECT_NE(DeriveStreamSeed(7, 9), DeriveStreamSeed(7, 10));
  EXPECT_NE(DeriveStreamSeed(7, 9), DeriveStreamSeed(8, 9));
}

TEST(DeriveStreamSeedTest, AdjacentRunSeedsDecorrelated) {
  // The failure mode this function exists for: two runs with nearby seeds
  // must produce per-index streams whose derived bits are uncorrelated.
  // Correlate the sign bit of the first Xoshiro output across indices.
  const uint64_t s1 = 700, s2 = 800;
  double bit_product = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    Xoshiro256 r1(DeriveStreamSeed(s1, static_cast<uint64_t>(i)));
    Xoshiro256 r2(DeriveStreamSeed(s2, static_cast<uint64_t>(i)));
    const int b1 = (r1() >> 63) ? 1 : -1;
    const int b2 = (r2() >> 63) ? 1 : -1;
    bit_product += b1 * b2;
  }
  EXPECT_LT(std::abs(bit_product / n), 0.01);
}

TEST(DeriveStreamSeedTest, StreamsWithinARunAreBalanced) {
  uint64_t ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ones += DeriveStreamSeed(42, static_cast<uint64_t>(i)) & 1;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(XoshiroTest, LowBitsAreBalanced) {
  Xoshiro256 rng(9);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += static_cast<int>(rng() & 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

}  // namespace
}  // namespace ldpjs
