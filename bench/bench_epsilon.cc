// Fig. 8: absolute error vs privacy budget eps on Zipf(1.5), Gaussian,
// MovieLens and Twitter; (k, m) = (18, 1024). Expected shape: AE falls as
// eps grows and flattens for sketch methods at large eps (sketch error
// dominates); our methods win at small eps; k-RR/FLH stay orders of
// magnitude worse on large domains.
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 8: AE vs eps, k=18, m=1024 ==\n\n");
  const double eps_values[] = {0.1, 0.5, 1, 2, 4, 6, 8, 10};
  const JoinMethod methods[] = {
      JoinMethod::kFagms,         JoinMethod::kKrr,
      JoinMethod::kAppleHcms,     JoinMethod::kFlh,
      JoinMethod::kLdpJoinSketch, JoinMethod::kLdpJoinSketchPlus};
  struct Workload {
    DatasetId id;
    double zipf_alpha;  // >0: override zipf skew
  };
  const Workload workloads[] = {{DatasetId::kZipf, 1.5},
                                {DatasetId::kGaussian, 0},
                                {DatasetId::kMovieLens, 0},
                                {DatasetId::kTwitter, 0}};

  for (const Workload& workload : workloads) {
    const DatasetSpec spec = GetDatasetSpec(workload.id);
    const uint64_t rows = std::min<uint64_t>(ScaledRows(spec.paper_rows),
                                             1'000'000);
    const JoinWorkload w =
        (workload.zipf_alpha > 0)
            ? MakeZipfWorkload(workload.zipf_alpha, spec.domain, rows, 19)
            : MakeWorkload(workload.id, rows, 19);
    const double truth = ExactJoinSize(w.table_a, w.table_b);
    std::printf("-- dataset %s (rows=%llu, truth=%s) --\n",
                w.name.c_str(), static_cast<unsigned long long>(rows),
                Sci(truth).c_str());
    PrintTableHeader({"eps", "method", "AE", "RE"});
    for (double eps : eps_values) {
      for (JoinMethod method : methods) {
        JoinMethodConfig config;
        config.epsilon = eps;
        config.sketch.k = 18;
        config.sketch.m = 1024;
        config.sketch.seed = 23;
        config.flh_pool_size = 128;
        config.run_seed = 5;
        const ErrorStats stats =
            MeasureJoinError(method, w.table_a, w.table_b, truth, config);
        PrintTableRow({Fixed(eps, 1), std::string(JoinMethodName(method)),
                       Sci(stats.mean_ae), Sci(stats.mean_re)});
      }
    }
    std::printf("\n");
  }
  std::printf("shape check: AE decreases in eps then flattens for "
              "sketch-based methods; LDPJoinSketch(+) best at small eps.\n");
  return 0;
}
