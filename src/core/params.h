// Shared parameter structs for the core protocols.
#ifndef LDPJS_CORE_PARAMS_H_
#define LDPJS_CORE_PARAMS_H_

#include <cstdint>

#include "common/hadamard.h"
#include "common/status.h"

namespace ldpjs {

/// Shape and hash seed of a private sketch. Two sketches are comparable
/// (joinable / mergeable) iff all three fields match.
struct SketchParams {
  int k = 18;        ///< number of rows (paper: k = 4·log(1/δ))
  int m = 1024;      ///< number of columns; must be a power of two (Hadamard)
  uint64_t seed = 1; ///< hash-family seed, public to clients and server

  void Validate() const {
    LDPJS_CHECK(k >= 1);
    LDPJS_CHECK(m >= 2);
    LDPJS_CHECK(IsPowerOfTwo(static_cast<uint64_t>(m)));
  }
};

/// c_ε = (e^ε + 1) / (e^ε − 1), the randomized-response debias factor.
double DebiasFactor(double epsilon);

}  // namespace ldpjs

#endif  // LDPJS_CORE_PARAMS_H_
