// k-ary Randomized Response (paper §II, [6]): the basic LDP mechanism over a
// finite domain D. The client keeps its value with probability
// e^ε / (e^ε + |D| - 1) and otherwise reports a uniformly random *other*
// value; the server calibrates the observed histogram back to unbiased
// frequency estimates. Noise grows with |D|, which is exactly the weakness
// the paper's sketches avoid.
#ifndef LDPJS_LDP_KRR_H_
#define LDPJS_LDP_KRR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/column.h"
#include "ldp/frequency_oracle.h"

namespace ldpjs {

class KrrClient {
 public:
  /// Mechanism over [0, domain) with privacy budget epsilon > 0.
  KrrClient(uint64_t domain, double epsilon);

  /// Perturbs one private value; the output is safe to release.
  uint64_t Perturb(uint64_t value, Xoshiro256& rng) const;

  double keep_probability() const { return keep_prob_; }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  double keep_prob_;  // e^eps / (e^eps + |D| - 1)
};

class KrrServer {
 public:
  KrrServer(uint64_t domain, double epsilon);

  void Absorb(uint64_t report);

  /// Calibrated unbiased estimate f̂(d) = (c(d) - n q) / (p - q), where p is
  /// the keep probability and q = (1 - p)/(|D| - 1).
  double EstimateFrequency(uint64_t d) const;

  /// All calibrated frequencies (length = domain).
  std::vector<double> EstimateAllFrequencies() const;

  uint64_t total_reports() const { return total_; }

 private:
  uint64_t domain_;
  double p_;  // keep probability
  double q_;  // per-other-value probability
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
};

/// End-to-end: perturbs every value of `column` (deterministic in seed) and
/// returns the calibrated frequency vector.
std::vector<double> KrrEstimateFrequencies(const Column& column,
                                           double epsilon, uint64_t seed);

}  // namespace ldpjs

#endif  // LDPJS_LDP_KRR_H_
