#include "common/hadamard.h"

namespace ldpjs {

void FastWalshHadamardTransform(std::span<double> data) {
  const size_t n = data.size();
  LDPJS_CHECK(IsPowerOfTwo(n));
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t i = 0; i < n; i += len << 1) {
      for (size_t j = i; j < i + len; ++j) {
        const double u = data[j];
        const double v = data[j + len];
        data[j] = u + v;
        data[j + len] = u - v;
      }
    }
  }
}

std::vector<double> NaiveHadamardTransform(const std::vector<double>& data) {
  const size_t n = data.size();
  LDPJS_CHECK(IsPowerOfTwo(n));
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      out[i] += data[j] * HadamardEntry(j, i);
    }
  }
  return out;
}

std::vector<std::vector<int>> MakeHadamardMatrix(uint64_t m) {
  LDPJS_CHECK(IsPowerOfTwo(m));
  std::vector<std::vector<int>> h(m, std::vector<int>(m));
  for (uint64_t i = 0; i < m; ++i) {
    for (uint64_t j = 0; j < m; ++j) {
      h[i][j] = HadamardEntry(i, j);
    }
  }
  return h;
}

}  // namespace ldpjs
