// Minimal binary serialization for sketches and client messages.
//
// Little-endian, length-prefixed; BinaryReader validates bounds and reports
// truncation via Status rather than crashing, so sketches can be exchanged
// between an untrusted client and the aggregator.
#ifndef LDPJS_COMMON_SERIALIZE_H_
#define LDPJS_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ldpjs {

/// Appends fixed-width little-endian values to a growable byte buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  /// Length-prefixed (u64) raw bytes.
  void PutBytes(std::span<const uint8_t> bytes);
  /// One wire frame: u32 length prefix + raw payload. The streaming
  /// aggregation tier concatenates frames into a single stream, so a reader
  /// can skip a frame without understanding its payload. Payloads above
  /// 4 GiB are a contract violation (frames are decode-buffer sized).
  void PutFrame(std::span<const uint8_t> payload);
  /// Length-prefixed vector of doubles.
  void PutDoubleVector(std::span<const double> values);
  /// Length-prefixed vector of signed 64-bit integers (raw sketch lanes).
  void PutI64Vector(std::span<const int64_t> values);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Reads values written by BinaryWriter; every getter checks bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::vector<double>> GetDoubleVector();
  Result<std::vector<int64_t>> GetI64Vector();
  /// Bounds-checks and consumes the next `n` bytes, returning a zero-copy
  /// view into the underlying buffer (valid while the buffer lives). This is
  /// the batch-decode primitive: one check up front instead of one per field.
  Result<std::span<const uint8_t>> GetRaw(size_t n);
  /// Reads one PutFrame record: u32 length + payload, returned zero-copy.
  Result<std::span<const uint8_t>> GetFrame();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_SERIALIZE_H_
