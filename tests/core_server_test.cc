#include <cmath>

#include <gtest/gtest.h>

#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 12, int m = 512, uint64_t seed = 21) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

TEST(DebiasFactorTest, MatchesFormula) {
  const double eps = 2.0;
  EXPECT_NEAR(DebiasFactor(eps),
              (std::exp(eps) + 1.0) / (std::exp(eps) - 1.0), 1e-12);
  // c_eps → 1 as eps grows, → ∞ as eps → 0.
  EXPECT_NEAR(DebiasFactor(30.0), 1.0, 1e-9);
  EXPECT_GT(DebiasFactor(0.01), 100.0);
}

TEST(LdpServerTest, TheoremTwoSingleValueContribution) {
  // All users hold the same value d: after debias + finalize,
  // E[M[j, h_j(d)]] = n·ξ_j(d) (Theorem 2 case d_i = d).
  const SketchParams params = TestParams();
  const double eps = 2.0;
  const uint64_t d = 77;
  const size_t n = 400000;
  Column column(std::vector<uint64_t>(n, d), 100);
  SimulationOptions sim;
  sim.run_seed = 5;
  sim.num_threads = 2;
  const LdpJoinSketchServer server =
      BuildLdpJoinSketch(column, params, eps, sim);
  const auto& rows = server.row_hashes();
  for (int j = 0; j < params.k; ++j) {
    const double expected =
        static_cast<double>(n) * rows[static_cast<size_t>(j)].sign(d);
    const double actual =
        server.cell(j, static_cast<int>(rows[static_cast<size_t>(j)].bucket(d)));
    EXPECT_NEAR(actual / expected, 1.0, 0.1) << "row " << j;
  }
}

TEST(LdpServerTest, TheoremSevenFrequencyUnbiased) {
  const SketchParams params = TestParams(18, 1024);
  const uint64_t domain = 1000;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 300000, 7);
  SimulationOptions sim;
  sim.run_seed = 9;
  const LdpJoinSketchServer server =
      BuildLdpJoinSketch(w.table_a, params, 4.0, sim);
  const auto freq = w.table_a.Frequencies();
  for (uint64_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(server.FrequencyEstimate(d) / static_cast<double>(freq[d]),
                1.0, 0.15)
        << "d=" << d;
  }
}

TEST(LdpServerTest, JoinEstimateTracksExactJoin) {
  const SketchParams params = TestParams(18, 1024);
  const uint64_t domain = 2000;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 200000, 13);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  SimulationOptions sim;
  sim.run_seed = 15;
  const LdpJoinSketchServer sa =
      BuildLdpJoinSketch(w.table_a, params, 4.0, sim);
  sim.run_seed = 16;
  const LdpJoinSketchServer sb =
      BuildLdpJoinSketch(w.table_b, params, 4.0, sim);
  EXPECT_NEAR(sa.JoinEstimate(sb) / truth, 1.0, 0.25);
}

TEST(LdpServerTest, JoinEstimateUnbiasedAcrossRuns) {
  // Average the estimator over repeated perturbation runs (fixed data and
  // hashes): the mean should approach the non-private Fast-AGMS estimate of
  // the same data, which is itself within tolerance of the truth.
  const SketchParams params = TestParams(6, 512);
  const uint64_t domain = 500;
  const JoinWorkload w = MakeZipfWorkload(1.6, domain, 40000, 17);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  double acc = 0;
  const int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    SimulationOptions sim;
    sim.run_seed = 100 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sa =
        BuildLdpJoinSketch(w.table_a, params, 4.0, sim);
    sim.run_seed = 200 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sb =
        BuildLdpJoinSketch(w.table_b, params, 4.0, sim);
    acc += sa.JoinEstimate(sb);
  }
  EXPECT_NEAR((acc / kRuns) / truth, 1.0, 0.2);
}

TEST(LdpServerTest, SmallerEpsilonLargerError) {
  const SketchParams params = TestParams(12, 512);
  const uint64_t domain = 500;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 60000, 19);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  auto mean_abs_err = [&](double eps) {
    double acc = 0;
    const int kRuns = 8;
    for (int run = 0; run < kRuns; ++run) {
      SimulationOptions sim;
      sim.run_seed = 300 + static_cast<uint64_t>(run);
      const LdpJoinSketchServer sa =
          BuildLdpJoinSketch(w.table_a, params, eps, sim);
      sim.run_seed = 400 + static_cast<uint64_t>(run);
      const LdpJoinSketchServer sb =
          BuildLdpJoinSketch(w.table_b, params, eps, sim);
      acc += std::abs(sa.JoinEstimate(sb) - truth);
    }
    return acc / kRuns;
  };
  EXPECT_LT(mean_abs_err(8.0), mean_abs_err(0.2));
}

TEST(LdpServerTest, MergeEqualsSequential) {
  const SketchParams params = TestParams(4, 128);
  LdpJoinSketchClient client(params, 2.0);
  LdpJoinSketchServer all(params, 2.0), part1(params, 2.0), part2(params, 2.0);
  Xoshiro256 rng1(1), rng2(1);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = static_cast<uint64_t>(i % 97);
    const LdpReport r = client.Perturb(v, rng1);
    all.Absorb(r);
    const LdpReport r2 = client.Perturb(v, rng2);
    (i % 2 == 0 ? part1 : part2).Absorb(r2);
  }
  part1.Merge(part2);
  all.Finalize();
  part1.Finalize();
  // Integer-lane accumulation makes merge exactly lossless.
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      EXPECT_EQ(all.cell(j, x), part1.cell(j, x));
    }
  }
  EXPECT_EQ(all.total_reports(), part1.total_reports());
}

TEST(LdpServerTest, ThreadCountDoesNotChangeTotals) {
  const SketchParams params = TestParams(6, 256);
  const JoinWorkload w = MakeZipfWorkload(1.4, 300, 30000, 23);
  SimulationOptions sim1;
  sim1.run_seed = 77;
  sim1.num_threads = 1;
  SimulationOptions sim4 = sim1;
  sim4.num_threads = 4;
  const LdpJoinSketchServer s1 =
      BuildLdpJoinSketch(w.table_a, params, 3.0, sim1);
  const LdpJoinSketchServer s4 =
      BuildLdpJoinSketch(w.table_a, params, 3.0, sim4);
  EXPECT_EQ(s1.total_reports(), s4.total_reports());
  // Block-indexed RNG streams + integer lanes: bit-identical cells for any
  // thread count.
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      EXPECT_EQ(s1.cell(j, x), s4.cell(j, x));
    }
  }
}

TEST(LdpServerTest, SubtractUniformMassShiftsEveryCell) {
  const SketchParams params = TestParams(2, 64);
  LdpJoinSketchServer server(params, 1.0);
  server.Finalize();
  LdpJoinSketchServer reference = server;
  server.SubtractUniformMass(640.0);
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      EXPECT_NEAR(server.cell(j, x), reference.cell(j, x) - 10.0, 1e-12);
    }
  }
}

TEST(LdpServerTest, SerializeRoundTrip) {
  const SketchParams params = TestParams(3, 128);
  LdpJoinSketchClient client(params, 2.5);
  LdpJoinSketchServer server(params, 2.5);
  Xoshiro256 rng(31);
  for (int i = 0; i < 1000; ++i) {
    server.Absorb(client.Perturb(static_cast<uint64_t>(i % 13), rng));
  }
  server.Finalize();
  const auto bytes = server.Serialize();
  auto restored = LdpJoinSketchServer::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->total_reports(), server.total_reports());
  EXPECT_TRUE(restored->finalized());
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      EXPECT_EQ(restored->cell(j, x), server.cell(j, x));
    }
  }
  // Restored sketch is usable: same frequency answers.
  EXPECT_EQ(restored->FrequencyEstimate(5), server.FrequencyEstimate(5));
}

TEST(LdpServerTest, DeserializeRejectsCorruptedShape) {
  const SketchParams params = TestParams(2, 64);
  LdpJoinSketchServer server(params, 1.0);
  auto bytes = server.Serialize();
  bytes[0] = 0;  // k = 0
  EXPECT_FALSE(LdpJoinSketchServer::Deserialize(bytes).ok());
}

TEST(LdpServerTest, DeserializeRejectsTruncation) {
  const SketchParams params = TestParams(2, 64);
  LdpJoinSketchServer server(params, 1.0);
  auto bytes = server.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(LdpJoinSketchServer::Deserialize(bytes).ok());
}

TEST(LdpServerTest, DeserializeRejectsTrailingBytes) {
  const SketchParams params = TestParams(2, 64);
  // Raw-lane (un-finalized) encoding.
  LdpJoinSketchServer raw(params, 1.0);
  auto raw_bytes = raw.Serialize();
  raw_bytes.push_back(0);
  EXPECT_EQ(LdpJoinSketchServer::Deserialize(raw_bytes).status().code(),
            StatusCode::kCorruption);
  // Finalized encoding.
  LdpJoinSketchServer finalized(params, 1.0);
  finalized.Finalize();
  auto finalized_bytes = finalized.Serialize();
  finalized_bytes.push_back(0);
  EXPECT_EQ(LdpJoinSketchServer::Deserialize(finalized_bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(LdpServerDeathTest, LifecycleViolationsAbort) {
  const SketchParams params = TestParams(2, 64);
  LdpJoinSketchServer server(params, 1.0);
  LdpJoinSketchServer other(params, 1.0);
  // Estimation before finalize.
  EXPECT_DEATH(server.JoinEstimate(other), "LDPJS_CHECK failed");
  EXPECT_DEATH(server.FrequencyEstimate(0), "LDPJS_CHECK failed");
  server.Finalize();
  // Absorb and merge after finalize.
  LdpReport r{1, 0, 0};
  EXPECT_DEATH(server.Absorb(r), "LDPJS_CHECK failed");
  EXPECT_DEATH(server.Merge(other), "LDPJS_CHECK failed");
  // Double finalize.
  EXPECT_DEATH(server.Finalize(), "LDPJS_CHECK failed");
}

TEST(LdpServerDeathTest, JoinAcrossSeedsAborts) {
  LdpJoinSketchServer a(TestParams(2, 64, 1), 1.0);
  LdpJoinSketchServer b(TestParams(2, 64, 2), 1.0);
  a.Finalize();
  b.Finalize();
  EXPECT_DEATH(a.JoinEstimate(b), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
