#include "service/aggregator_shard.h"

#include "common/serialize.h"

namespace ldpjs {

AggregatorShard::AggregatorShard(const SketchParams& params, double epsilon)
    : sketch_(params, epsilon),
      ring_(kShardDecodeRingSize * kMaxWireBatchReports) {}

Status AggregatorShard::IngestFrame(std::span<const uint8_t> frame) {
  std::span<LdpReport> buffer(
      ring_.data() + next_buffer_ * kMaxWireBatchReports, kMaxWireBatchReports);
  BinaryReader reader(frame);
  auto count = DecodeReportBatch(reader, buffer);
  if (!count.ok()) return count.status();
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after batch-envelope record");
  }
  // The codec guarantees strict ±1 signs and j ≤ 0xffff; the sketch shape
  // (k, m) is this shard's business, and AbsorbBatch treats violations as
  // programmer errors (abort), so screen them here as wire corruption.
  const std::span<const LdpReport> reports = buffer.first(*count);
  const uint32_t k = static_cast<uint32_t>(sketch_.params().k);
  const uint32_t m = static_cast<uint32_t>(sketch_.params().m);
  for (const LdpReport& r : reports) {
    if (r.j >= k) {
      return Status::Corruption("report row index outside sketch shape");
    }
    if (r.l >= m) {
      return Status::Corruption("report coordinate outside sketch shape");
    }
  }
  sketch_.AbsorbBatch(reports);
  next_buffer_ = (next_buffer_ + 1) % kShardDecodeRingSize;
  ++frames_;
  return Status::OK();
}

void AggregatorShard::MergeRaw(const LdpJoinSketchServer& other) {
  sketch_.Merge(other);
}

void AggregatorShard::SubtractRaw(const LdpJoinSketchServer& other) {
  // Fold the retracted reports into the shipped counter first, so the
  // lifetime total (shipped + live) is unchanged by the subtraction.
  shipped_reports_ += other.total_reports();
  sketch_.SubtractRaw(other);
}

void AggregatorShard::Reset() {
  shipped_reports_ += sketch_.total_reports();
  sketch_.ResetLanes();
}

}  // namespace ldpjs
