#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/join.h"
#include "sketch/join_sketch.h"

namespace ldpjs {
namespace {

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch s(1, 4, 64);
  const JoinWorkload w = MakeZipfWorkload(1.4, 500, 20000, 3);
  s.UpdateColumn(w.table_a);
  const auto freq = w.table_a.Frequencies();
  for (uint64_t d = 0; d < 500; ++d) {
    EXPECT_GE(s.FrequencyUpperBound(d), static_cast<double>(freq[d]))
        << "d=" << d;
  }
}

TEST(CountMinTest, SingleValueExact) {
  CountMinSketch s(2, 3, 32);
  for (int i = 0; i < 42; ++i) s.Update(7);
  EXPECT_EQ(s.FrequencyUpperBound(7), 42.0);
  EXPECT_EQ(s.total_weight(), 42.0);
}

TEST(CountMinTest, WeightedUpdates) {
  CountMinSketch s(3, 3, 32);
  s.Update(5, 2.5);
  s.Update(5, 1.5);
  EXPECT_EQ(s.FrequencyUpperBound(5), 4.0);
}

TEST(CountMinTest, PointEstimateTighterThanUpperBoundOnTheTail) {
  CountMinSketch s(4, 5, 128);
  const JoinWorkload w = MakeZipfWorkload(1.4, 2000, 50000, 5);
  s.UpdateColumn(w.table_a);
  const auto freq = w.table_a.Frequencies();
  // Tail items sit in cells whose collision mass is close to the global
  // n/m, so subtracting it improves the estimate on average (for a heavy
  // item whose cell is mostly its own mass the subtraction can overshoot —
  // the correction is an average-case one, hence the averaged check).
  double err_ub = 0, err_est = 0;
  int counted = 0;
  for (uint64_t d = 100; d < 600; ++d) {
    const double truth = static_cast<double>(freq[d]);
    const double ub = s.FrequencyUpperBound(d);
    const double est = s.FrequencyEstimate(d);
    EXPECT_LE(est, ub + 1e-9);
    EXPECT_GE(est, 0.0);
    err_ub += std::abs(ub - truth);
    err_est += std::abs(est - truth);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(err_est, err_ub);
}

TEST(CountMinTest, HeavyHittersContainsAllTrueHeavyItems) {
  CountMinSketch s(5, 5, 512);
  const JoinWorkload w = MakeZipfWorkload(1.8, 1000, 50000, 7);
  s.UpdateColumn(w.table_a);
  const auto freq = w.table_a.Frequencies();
  const double threshold = 0.01 * static_cast<double>(w.table_a.size());
  std::vector<uint64_t> candidates(1000);
  for (uint64_t d = 0; d < 1000; ++d) candidates[d] = d;
  const auto heavy = s.HeavyHitters(candidates, threshold);
  for (uint64_t d = 0; d < 1000; ++d) {
    if (static_cast<double>(freq[d]) > threshold) {
      EXPECT_TRUE(std::find(heavy.begin(), heavy.end(), d) != heavy.end())
          << "missing true heavy hitter " << d;
    }
  }
}

TEST(CountMinDeathTest, NegativeWeightAborts) {
  CountMinSketch s(1, 2, 16);
  EXPECT_DEATH(s.Update(0, -1.0), "LDPJS_CHECK failed");
}

TEST(SeparatedJoinSketchTest, SeparatesHeavyItemsExactly) {
  SeparatedSketchParams params;
  params.seed = 9;
  params.heavy_fraction = 0.01;
  const JoinWorkload w = MakeZipfWorkload(1.8, 2000, 60000, 9);
  SeparatedJoinSketch sketch(params, w.table_a);
  EXPECT_GT(sketch.heavy_item_count(), 0u);
  const auto freq = w.table_a.Frequencies();
  // Every heavy counter is exact.
  for (const auto& [value, count] : sketch.heavy_items()) {
    EXPECT_EQ(count, static_cast<double>(freq[value])) << "value " << value;
  }
  // The hottest item must be heavy.
  EXPECT_TRUE(sketch.heavy_items().contains(0));
}

TEST(SeparatedJoinSketchTest, FrequencyExactForHeavyItems) {
  SeparatedSketchParams params;
  params.seed = 11;
  params.heavy_fraction = 0.01;
  const JoinWorkload w = MakeZipfWorkload(1.6, 1000, 50000, 11);
  SeparatedJoinSketch sketch(params, w.table_a);
  const auto freq = w.table_a.Frequencies();
  EXPECT_EQ(sketch.FrequencyEstimate(0), static_cast<double>(freq[0]));
}

TEST(SeparatedJoinSketchTest, JoinBeatsPlainFastAgmsOnSkewedData) {
  // The motivating property from Skimmed sketch / JoinSketch: exact heavy
  // handling cuts the dominant collision error. Compare mean absolute
  // error across seeds at equal AGMS shape.
  const JoinWorkload w = MakeZipfWorkload(1.8, 5000, 80000, 13);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  double err_sep = 0, err_plain = 0;
  const int kSeeds = 8;
  for (int s = 0; s < kSeeds; ++s) {
    SeparatedSketchParams params;
    params.seed = 100 + static_cast<uint64_t>(s);
    params.agms_k = 5;
    params.agms_m = 256;
    params.heavy_fraction = 0.005;
    SeparatedJoinSketch sa(params, w.table_a);
    SeparatedJoinSketch sb(params, w.table_b);
    err_sep += std::abs(sa.JoinEstimate(sb) - truth);

    FastAgmsSketch fa(100 + static_cast<uint64_t>(s), 5, 256);
    FastAgmsSketch fb(100 + static_cast<uint64_t>(s), 5, 256);
    fa.UpdateColumn(w.table_a);
    fb.UpdateColumn(w.table_b);
    err_plain += std::abs(fa.JoinEstimate(fb) - truth);
  }
  EXPECT_LT(err_sep, err_plain);
}

TEST(SeparatedJoinSketchTest, JoinTracksTruth) {
  SeparatedSketchParams params;
  params.seed = 15;
  params.heavy_fraction = 0.005;
  const JoinWorkload w = MakeZipfWorkload(1.5, 3000, 60000, 15);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  SeparatedJoinSketch sa(params, w.table_a);
  SeparatedJoinSketch sb(params, w.table_b);
  EXPECT_NEAR(sa.JoinEstimate(sb) / truth, 1.0, 0.1);
}

TEST(SeparatedJoinSketchDeathTest, InvalidHeavyFractionAborts) {
  SeparatedSketchParams params;
  params.heavy_fraction = 0.0;
  Column c({1, 2, 3}, 10);
  EXPECT_DEATH(SeparatedJoinSketch(params, c), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
