#include "sketch/join_sketch.h"

#include <unordered_set>

#include "common/random.h"
#include "common/status.h"

namespace ldpjs {

SeparatedJoinSketch::SeparatedJoinSketch(const SeparatedSketchParams& params,
                                         const Column& column)
    : params_(params),
      light_(params.seed, params.agms_k, params.agms_m) {
  LDPJS_CHECK(params.heavy_fraction > 0.0 && params.heavy_fraction < 1.0);
  // Pass 1: Count-Min over the stream; threshold on the upper bound keeps
  // every true heavy hitter (one-sided error only admits false positives,
  // which merely waste exact counters).
  CountMinSketch cm(Mix64(params.seed ^ 0xC0FFEEULL), params.cm_k,
                    params.cm_m);
  cm.UpdateColumn(column);
  const double threshold =
      params.heavy_fraction * static_cast<double>(column.size());
  std::unordered_set<uint64_t> heavy_set;
  for (uint64_t v : column.values()) {
    if (heavy_set.contains(v)) continue;
    if (cm.FrequencyUpperBound(v) > threshold) heavy_set.insert(v);
  }
  // Pass 2: route.
  for (uint64_t v : column.values()) {
    if (heavy_set.contains(v)) {
      ++heavy_[v];
    } else {
      light_.Update(v);
    }
  }
}

double SeparatedJoinSketch::JoinEstimate(
    const SeparatedJoinSketch& other) const {
  // heavy ⋈ heavy: exact-exact.
  double total = 0.0;
  for (const auto& [value, count] : heavy_) {
    auto it = other.heavy_.find(value);
    if (it != other.heavy_.end()) total += count * it->second;
  }
  // heavy ⋈ light (both directions): exact counter times the other side's
  // light-sketch frequency estimate. A heavy item of A that is heavy in B
  // too was already counted above and is absent from B's light sketch, so
  // the estimate below only picks up its light-side residual (zero).
  for (const auto& [value, count] : heavy_) {
    if (other.heavy_.contains(value)) continue;
    total += count * other.light_.FrequencyEstimate(value);
  }
  for (const auto& [value, count] : other.heavy_) {
    if (heavy_.contains(value)) continue;
    total += count * light_.FrequencyEstimate(value);
  }
  // light ⋈ light: sketch product.
  total += light_.JoinEstimate(other.light_);
  return total;
}

double SeparatedJoinSketch::FrequencyEstimate(uint64_t d) const {
  auto it = heavy_.find(d);
  if (it != heavy_.end()) return it->second;
  return light_.FrequencyEstimate(d);
}

}  // namespace ldpjs
