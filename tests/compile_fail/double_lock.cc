// Negative-compile case: acquiring a Mutex already held in the same
// scope must not compile under -Werror=thread-safety (the wrapper is
// non-reentrant; a second MutexLock on the same capability is deadlock).
//
// Clang-only (the annotations are no-ops elsewhere); the configure-time
// suite in CMakeLists.txt registers it only for Clang builds.
#include "common/thread_annotations.h"

int main() {
  ldpjs::Mutex mu;
  ldpjs::MutexLock lock(mu);
#ifdef LDPJS_EXPECT_FAIL
  ldpjs::MutexLock again(mu);  // Capability 'mu' is already held.
#endif
  return 0;
}
