// Fixed-size thread pool used to simulate millions of LDP clients in
// parallel. ParallelFor shards an index range deterministically, so callers
// that derive per-index RNG streams get bit-identical results regardless of
// the number of worker threads.
#ifndef LDPJS_COMMON_THREAD_POOL_H_
#define LDPJS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ldpjs {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(shard, begin, end) over [0, total) split into one contiguous
  /// shard per worker; blocks until all shards complete. Shard boundaries
  /// depend only on (total, num_threads), not on scheduling.
  void ParallelFor(size_t total,
                   const std::function<void(size_t shard, size_t begin,
                                            size_t end)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_THREAD_POOL_H_
