#include "core/multiway.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/hadamard.h"
#include "core/simulation.h"
#include "data/datasets.h"

namespace ldpjs {
namespace {

MultiwayParams MidParams(int k = 9, int m = 256, uint64_t left_seed = 1,
                         uint64_t right_seed = 2) {
  MultiwayParams params;
  params.k = k;
  params.m_left = m;
  params.m_right = m;
  params.left_seed = left_seed;
  params.right_seed = right_seed;
  return params;
}

PairColumn MakeCorrelatedPairs(uint64_t domain, size_t rows, uint64_t seed) {
  PairColumn out;
  out.left_domain = domain;
  out.right_domain = domain;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    out.left.push_back(std::min(rng.NextBounded(domain),
                                rng.NextBounded(domain)));
    out.right.push_back(std::min(rng.NextBounded(domain),
                                 rng.NextBounded(domain)));
  }
  return out;
}

TEST(MultiwayClientTest, ReportFieldsInRange) {
  const MultiwayParams params = MidParams();
  LdpMultiwayClient client(params, 2.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const MultiwayReport r = client.Perturb(
        static_cast<uint64_t>(i % 50), static_cast<uint64_t>(i % 70), rng);
    EXPECT_LT(r.replica, params.k);
    EXPECT_LT(r.l1, static_cast<uint32_t>(params.m_left));
    EXPECT_LT(r.l2, static_cast<uint32_t>(params.m_right));
    EXPECT_TRUE(r.y == 1 || r.y == -1);
  }
}

TEST(MultiwayClientTest, SatisfiesEpsilonLdpClosedForm) {
  // Same argument as the 2-way client: for any tuple and output, the
  // conditional probability of y given (replica, l1, l2) is p or 1-p, so
  // the worst ratio between two tuples is e^ε.
  const double eps = 1.3;
  LdpMultiwayClient client(MidParams(2, 8), eps);
  // Exhaustively compare two tuples over the output space via sampling with
  // a shared RNG: the decisive check is the closed-form bound.
  const double p = 1.0 - 1.0 / (std::exp(eps) + 1.0);
  EXPECT_NEAR(p / (1.0 - p), std::exp(eps), 1e-9);
}

TEST(MultiwayServerTest, SingleTupleExpectationLandsInRightCell) {
  // n identical tuples (a, b): after finalize, E[M[h_A(a), h_B(b)]] =
  // n·ξ_A(a)·ξ_B(b); every other cell has expectation 0.
  const MultiwayParams params = MidParams(3, 64, 5, 6);
  const double eps = 2.0;
  const uint64_t a = 17, b = 29;
  const size_t n = 300000;
  LdpMultiwayClient client(params, eps);
  LdpMultiwayServer server(params, eps);
  for (size_t i = 0; i < n; ++i) {
    Xoshiro256 rng(Mix64(777 ^ static_cast<uint64_t>(i)));
    server.Absorb(client.Perturb(a, b, rng));
  }
  server.Finalize();

  const auto left_rows = MakeRowHashes(params.left_seed, params.k,
                                       static_cast<uint64_t>(params.m_left));
  const auto right_rows = MakeRowHashes(params.right_seed, params.k,
                                        static_cast<uint64_t>(params.m_right));
  for (int r = 0; r < params.k; ++r) {
    const auto& lh = left_rows[static_cast<size_t>(r)];
    const auto& rh = right_rows[static_cast<size_t>(r)];
    const double expected =
        static_cast<double>(n) * lh.sign(a) * rh.sign(b);
    const double actual =
        server.replica_data(r)[lh.bucket(a) * static_cast<size_t>(params.m_right) +
                               rh.bucket(b)];
    EXPECT_NEAR(actual / expected, 1.0, 0.15) << "replica " << r;
  }
}

TEST(MultiwayTest, ThreeWayChainTracksExact) {
  // Signal must dominate the Hadamard-sampling noise: small m, large n,
  // large eps keep the pure-noise inner-product term well below the truth.
  const uint64_t domain = 32;
  const int k = 18, m = 64;
  const uint64_t seed_a = 100, seed_b = 200;
  const double eps = 10.0;

  const JoinWorkload ends = MakeZipfWorkload(1.3, domain, 250000, 3);
  const PairColumn middle = MakeCorrelatedPairs(domain, 250000, 7);
  const double truth =
      ExactChainJoinSize(ends.table_a, {middle}, ends.table_b);
  ASSERT_GT(truth, 0.0);

  SketchParams end_params;
  end_params.k = k;
  end_params.m = m;
  end_params.seed = seed_a;
  SimulationOptions sim;
  sim.run_seed = 11;
  const LdpJoinSketchServer left =
      BuildLdpJoinSketch(ends.table_a, end_params, eps, sim);
  end_params.seed = seed_b;
  sim.run_seed = 12;
  const LdpJoinSketchServer right =
      BuildLdpJoinSketch(ends.table_b, end_params, eps, sim);
  const LdpMultiwayServer mid = BuildLdpMultiwaySketch(
      middle, MidParams(k, m, seed_a, seed_b), eps, 13);

  const double est = LdpChainJoinEstimate(left, {&mid}, right);
  EXPECT_NEAR(est / truth, 1.0, 0.5);
}

TEST(MultiwayTest, FourWayChainRunsAndStaysInBand) {
  // Three multiplied sketches compound the sampling noise, so the four-way
  // test needs an even stronger signal regime than the three-way one.
  const uint64_t domain = 16;
  const int k = 18, m = 32;
  const double eps = 10.0;
  const uint64_t seed_a = 1, seed_b = 2, seed_c = 3;

  const JoinWorkload ends = MakeZipfWorkload(1.4, domain, 300000, 5);
  const PairColumn mid1 = MakeCorrelatedPairs(domain, 300000, 17);
  const PairColumn mid2 = MakeCorrelatedPairs(domain, 300000, 19);
  const double truth =
      ExactChainJoinSize(ends.table_a, {mid1, mid2}, ends.table_b);
  ASSERT_GT(truth, 0.0);

  SketchParams end_params;
  end_params.k = k;
  end_params.m = m;
  end_params.seed = seed_a;
  SimulationOptions sim;
  sim.run_seed = 23;
  const LdpJoinSketchServer left =
      BuildLdpJoinSketch(ends.table_a, end_params, eps, sim);
  end_params.seed = seed_c;
  sim.run_seed = 29;
  const LdpJoinSketchServer right =
      BuildLdpJoinSketch(ends.table_b, end_params, eps, sim);
  const LdpMultiwayServer sketch1 = BuildLdpMultiwaySketch(
      mid1, MidParams(k, m, seed_a, seed_b), eps, 31);
  const LdpMultiwayServer sketch2 = BuildLdpMultiwaySketch(
      mid2, MidParams(k, m, seed_b, seed_c), eps, 37);

  const double est =
      LdpChainJoinEstimate(left, {&sketch1, &sketch2}, right);
  EXPECT_NEAR(est / truth, 1.0, 0.8);
}

TEST(MultiwayTest, TwoWayDegenerateMatchesJoinEstimateShape) {
  // Zero middle tables: the chain reduces to Σ_x left[j,x]·right[j,x],
  // the same estimator as LdpJoinSketchServer::JoinEstimate.
  const JoinWorkload w = MakeZipfWorkload(1.5, 200, 60000, 41);
  SketchParams params;
  params.k = 7;
  params.m = 256;
  params.seed = 4;
  SimulationOptions sim;
  sim.run_seed = 43;
  const LdpJoinSketchServer sa = BuildLdpJoinSketch(w.table_a, params, 4.0, sim);
  sim.run_seed = 44;
  const LdpJoinSketchServer sb = BuildLdpJoinSketch(w.table_b, params, 4.0, sim);
  EXPECT_EQ(LdpChainJoinEstimate(sa, {}, sb), sa.JoinEstimate(sb));
}

TEST(MultiwayServerTest, MergeEqualsSequential) {
  const MultiwayParams params = MidParams(2, 32);
  LdpMultiwayClient client(params, 2.0);
  LdpMultiwayServer all(params, 2.0), p1(params, 2.0), p2(params, 2.0);
  Xoshiro256 rng1(1), rng2(1);
  for (int i = 0; i < 3000; ++i) {
    const auto r = client.Perturb(static_cast<uint64_t>(i % 10),
                                  static_cast<uint64_t>(i % 13), rng1);
    all.Absorb(r);
    const auto r2 = client.Perturb(static_cast<uint64_t>(i % 10),
                                   static_cast<uint64_t>(i % 13), rng2);
    (i % 2 == 0 ? p1 : p2).Absorb(r2);
  }
  p1.Merge(p2);
  all.Finalize();
  p1.Finalize();
  for (int r = 0; r < params.k; ++r) {
    const double* da = all.replica_data(r);
    const double* db = p1.replica_data(r);
    for (size_t i = 0;
         i < static_cast<size_t>(params.m_left) * static_cast<size_t>(params.m_right);
         ++i) {
      EXPECT_NEAR(da[i], db[i], 1e-9);
    }
  }
}

TEST(MultiwayDeathTest, ValidationAndLifecycle) {
  MultiwayParams bad = MidParams();
  bad.m_left = 100;  // not a power of two
  EXPECT_DEATH(LdpMultiwayServer(bad, 1.0), "LDPJS_CHECK failed");

  LdpMultiwayServer server(MidParams(2, 32), 1.0);
  server.Finalize();
  MultiwayReport r{1, 0, 0, 0};
  EXPECT_DEATH(server.Absorb(r), "LDPJS_CHECK failed");
  EXPECT_DEATH(server.Finalize(), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
