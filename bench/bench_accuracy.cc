// Fig. 5: relative error of join size estimation on all six datasets.
// Paper setting: eps = 4, (k, m) = (18, 1024). Expected shape:
//   RE(LDPJoinSketch+) <= RE(LDPJoinSketch) << RE(k-RR), RE(FLH);
//   our methods close to the non-private FAGMS on large skewed data;
//   the advantage shrinks on Facebook (small data).
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 5: join size estimation accuracy (RE), eps=4, "
              "k=18, m=1024 ==\n\n");
  JoinMethodConfig config;
  config.epsilon = 4.0;
  config.sketch.k = 18;
  config.sketch.m = 1024;
  config.sketch.seed = 7;
  config.flh_pool_size = 128;
  config.plus_sample_rate = 0.1;
  config.plus_threshold = 0.001;
  config.run_seed = 1;

  const JoinMethod methods[] = {
      JoinMethod::kFagms,         JoinMethod::kKrr,
      JoinMethod::kAppleHcms,     JoinMethod::kFlh,
      JoinMethod::kLdpJoinSketch, JoinMethod::kLdpJoinSketchPlus};

  PrintTableHeader({"dataset", "method", "RE", "AE", "estimate", "truth"});
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const uint64_t rows = ScaledRows(spec.paper_rows);
    const JoinWorkload w = MakeWorkload(spec.id, rows, /*seed=*/11);
    const double truth = ExactJoinSize(w.table_a, w.table_b);
    for (JoinMethod method : methods) {
      const ErrorStats stats =
          MeasureJoinError(method, w.table_a, w.table_b, truth, config);
      PrintTableRow({spec.name, std::string(JoinMethodName(method)),
                     Sci(stats.mean_re), Sci(stats.mean_ae),
                     Sci(stats.mean_estimate), Sci(truth)});
    }
  }
  std::printf("\nshape check: LDPJoinSketch(+) RE well below k-RR/FLH on "
              "every large-domain dataset, near FAGMS on skewed data.\n");
  return 0;
}
