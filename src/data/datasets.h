// The six evaluation workloads of paper Table II.
//
// The four real datasets (MovieLens, TPC-DS store_sales, Twitter ego,
// Facebook ego) are not redistributable in this offline environment, so each
// is simulated by a generator matched to its Table-II domain size, row count
// and skew (see DESIGN.md "Dataset substitutions"). Every method under test
// observes only the frequency vector of the join column, so matching those
// three properties exercises the identical code paths.
//
// A JoinWorkload is the two private join columns of the paper's query
//   SELECT COUNT(*) FROM T1 JOIN T2 ON T1.A = T2.B
// drawn as two independent samples of the same population.
#ifndef LDPJS_DATA_DATASETS_H_
#define LDPJS_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/column.h"

namespace ldpjs {

enum class DatasetId {
  kZipf,       ///< synthetic Zipf(alpha), alpha configurable
  kGaussian,   ///< discretized Gaussian
  kMovieLens,  ///< simulated: Zipf-like over 83,239 movie ids
  kTpcds,      ///< simulated: mild-skew over 18,000 item_sk
  kTwitter,    ///< simulated: heavy-tail over 77,072 node ids
  kFacebook,   ///< simulated: 4,039 node ids, small data
};

/// Static description of a workload (the realized row of Table II).
struct DatasetSpec {
  DatasetId id;
  std::string name;
  uint64_t domain;      ///< generator domain (possible ids)
  uint64_t paper_rows;  ///< row count reported in Table II
  double zipf_alpha;    ///< skew of the simulating Zipf (0 = not Zipf-based)
};

/// Specs for all six paper datasets. Zipf entries use alpha = 1.1 by default.
std::vector<DatasetSpec> AllDatasetSpecs();

/// Spec for one dataset.
DatasetSpec GetDatasetSpec(DatasetId id);

struct JoinWorkload {
  std::string name;
  Column table_a;
  Column table_b;
};

/// Builds the two join columns for `id` with `rows` values per table
/// (pass spec.paper_rows for paper scale). Deterministic in `seed`;
/// table B uses an independent derived stream.
JoinWorkload MakeWorkload(DatasetId id, uint64_t rows, uint64_t seed);

/// Zipf workload with explicit skew (Fig. 12 sweep).
JoinWorkload MakeZipfWorkload(double alpha, uint64_t domain, uint64_t rows,
                              uint64_t seed);

}  // namespace ldpjs

#endif  // LDPJS_DATA_DATASETS_H_
