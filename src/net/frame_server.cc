#include "net/frame_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace ldpjs {

namespace {

/// Transport header bytes per frame (u32 length + u8 type).
constexpr size_t kFrameHeaderBytes = 5;

}  // namespace

FrameServer::FrameServer(const SketchParams& params, double epsilon,
                         const FrameServerOptions& options)
    : params_(params),
      epsilon_(epsilon),
      options_(options),
      aggregator_(params, epsilon,
                  options.num_shards == 0 ? 1 : options.num_shards),
      shard_frames_(aggregator_.num_shards()),
      shard_reports_(aggregator_.num_shards()) {
  LDPJS_CHECK(options_.queue_capacity >= 1);
}

FrameServer::~FrameServer() {
  if (started_ && !stopped_) Stop();
}

Status FrameServer::Start() {
  LDPJS_CHECK(!started_);
  auto listener = Socket::ListenTcp(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.local_port();
  started_ = true;
  acceptor_ = std::thread(&FrameServer::AcceptLoop, this);
  pump_ = std::thread(&FrameServer::PumpLoop, this);
  return Status::OK();
}

void FrameServer::AcceptLoop() {
  for (;;) {
    auto socket = listener_.Accept();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    if (!socket.ok()) {
      // Persistent failures (EMFILE under connection pressure) must not
      // busy-spin a core; back off briefly before retrying.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (options_.send_timeout_seconds > 0) {
      socket->SetSendTimeout(options_.send_timeout_seconds);
    }
    auto conn = std::make_unique<Connection>();
    conn->id = connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conn->socket = std::move(*socket);
    Connection* raw = conn.get();
    // The thread handle must be fully assigned BEFORE the connection is
    // visible to the pump: a reader that exits instantly (e.g. a HELLO
    // mismatch) must never be reaped while raw->reader is still an empty
    // handle — registration under mu_ is the pump's happens-before edge.
    raw->reader = std::thread(&FrameServer::ReaderLoop, this, raw);
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.push_back(std::move(conn));
      // A Stop() racing this accept has already swept the registered
      // sockets; cover the newcomer so its reader is unblocked too.
      if (stopping_) raw->socket.ShutdownBoth();
    }
    // The reader may have finished before registration — wake the pump so
    // the reap is prompt.
    work_cv_.notify_all();
  }
}

bool FrameServer::HelloMatches(const SessionHello& hello) const {
  // Epsilon compares as bits: the debias scale must match exactly or the
  // client's flip probability and the server's c_eps disagree.
  uint64_t theirs = 0, ours = 0;
  std::memcpy(&theirs, &hello.epsilon, sizeof(theirs));
  std::memcpy(&ours, &epsilon_, sizeof(ours));
  return hello.k == static_cast<uint32_t>(params_.k) &&
         hello.m == static_cast<uint32_t>(params_.m) &&
         hello.seed == params_.seed && theirs == ours;
}

void FrameServer::SendError(Connection& conn, const Status& status) {
  // Best effort: the peer may already be gone.
  std::lock_guard<std::mutex> g(conn.write_mu);
  (void)WriteNetFrame(conn.socket, NetFrameType::kError,
                      EncodeErrorPayload(status));
}

void FrameServer::ReaderLoop(Connection* conn) {
  bool session_open = false;
  // --- Handshake: exactly one HELLO with matching session params. --------
  auto hello_frame = ReadNetFrame(conn->socket, kMaxIngestFramePayload);
  if (hello_frame.ok() && hello_frame->type == NetFrameType::kHello) {
    conn->bytes_received.fetch_add(
        kFrameHeaderBytes + hello_frame->payload.size(),
        std::memory_order_relaxed);
    auto hello = DecodeHello(hello_frame->payload);
    if (!hello.ok()) {
      conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
      SendError(*conn, hello.status());
    } else if (!HelloMatches(*hello)) {
      handshakes_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(*conn, Status::FailedPrecondition(
                           "session params mismatch: server sketch is k=" +
                           std::to_string(params_.k) +
                           " m=" + std::to_string(params_.m)));
    } else {
      SessionHelloOk ok;
      ok.num_shards = static_cast<uint32_t>(aggregator_.num_shards());
      ok.acked_data = options_.backpressure == BackpressurePolicy::kShed;
      std::lock_guard<std::mutex> g(conn->write_mu);
      session_open =
          WriteNetFrame(conn->socket, NetFrameType::kHelloOk, EncodeHelloOk(ok))
              .ok();
    }
  } else if (!hello_frame.ok() &&
             hello_frame.status().code() == StatusCode::kNotFound) {
    // Clean close before HELLO: a port probe, not an error.
  } else {
    conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
    SendError(*conn, Status::Corruption("expected HELLO"));
  }

  // --- Frame loop: parse, apply backpressure, enqueue for the pump. ------
  while (session_open) {
    auto frame = ReadNetFrame(conn->socket, kMaxIngestFramePayload);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kNotFound) {
        conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        SendError(*conn, frame.status());
      }
      break;
    }
    const bool is_data = frame->type == NetFrameType::kData;
    const bool is_control = frame->type == NetFrameType::kSnapshot ||
                            frame->type == NetFrameType::kFinalize ||
                            frame->type == NetFrameType::kBye;
    if (!is_data && !is_control) {
      conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
      SendError(*conn, Status::Corruption("unexpected client frame type"));
      break;
    }
    conn->frames_received.fetch_add(1, std::memory_order_relaxed);
    conn->bytes_received.fetch_add(kFrameHeaderBytes + frame->payload.size(),
                                   std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (is_data && options_.backpressure == BackpressurePolicy::kShed &&
          conn->queue.size() >= options_.queue_capacity) {
        lock.unlock();
        conn->frames_shed.fetch_add(1, std::memory_order_relaxed);
        const uint8_t busy = static_cast<uint8_t>(DataAckCode::kBusy);
        std::lock_guard<std::mutex> g(conn->write_mu);
        if (!WriteNetFrame(conn->socket, NetFrameType::kDataAck, {&busy, 1})
                 .ok()) {
          session_open = false;
        }
        continue;
      }
      // Block policy (and control frames in either policy): park until the
      // pump makes space. During a stopping drain the frame is admitted
      // regardless so the reader can reach the client's close — memory
      // stays bounded at capacity + 1 per connection.
      space_cv_.wait(lock, [&] {
        return conn->queue.size() < options_.queue_capacity || stopping_;
      });
      conn->queue.push_back(Item{frame->type, std::move(frame->payload)});
      const uint64_t depth = conn->queue.size();
      uint64_t seen = conn->queue_high_water.load(std::memory_order_relaxed);
      while (depth > seen &&
             !conn->queue_high_water.compare_exchange_weak(
                 seen, depth, std::memory_order_relaxed)) {
      }
    }
    work_cv_.notify_one();
    if (is_data && options_.backpressure == BackpressurePolicy::kShed) {
      const uint8_t ok = static_cast<uint8_t>(DataAckCode::kAbsorbed);
      std::lock_guard<std::mutex> g(conn->write_mu);
      if (!WriteNetFrame(conn->socket, NetFrameType::kDataAck, {&ok, 1})
               .ok()) {
        session_open = false;
      }
    }
    if (frame->type == NetFrameType::kBye) break;  // client is done sending
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    conn->reader_done = true;
  }
  work_cv_.notify_all();
}

void FrameServer::ReapFinishedConnections() {
  // Pump-thread only. A connection whose reader exited and whose queue is
  // drained is finished for good: join the thread, keep its final counter
  // snapshot, free everything else — so a long-lived server that has
  // handled millions of short-lived clients holds live connections plus
  // one metrics row per departed one, not their queues/threads/sockets.
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : connections_) {
      if (conn->reader_done && conn->queue.empty()) {
        // Counters are final here: the reader mutates them only before
        // setting reader_done, the pump only while the queue is non-empty.
        // Snapshot into departed_ in the same critical section that removes
        // the live entry, so a concurrent metrics() always sees the
        // connection exactly once and aggregate totals stay monotonic.
        ConnectionMetrics final_row = SnapshotConnection(*conn);
        final_row.active = false;
        departed_.push_back(final_row);
        finished.push_back(std::move(conn));
      }
    }
    std::erase_if(connections_,
                  [](const std::unique_ptr<Connection>& c) { return !c; });
  }
  for (auto& conn : finished) conn->reader.join();
}

void FrameServer::PumpLoop() {
  size_t rr = 0;
  for (;;) {
    ReapFinishedConnections();
    Connection* conn = nullptr;
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Pick the next queued item round-robin across connections.
      const size_t n = connections_.size();
      for (size_t i = 0; i < n && conn == nullptr; ++i) {
        Connection* c = connections_[(rr + i) % n].get();
        if (!c->queue.empty()) {
          conn = c;
          rr = (rr + i + 1) % n;
        }
      }
      if (conn == nullptr) {
        if (stopping_ && connections_.empty()) return;  // fully drained
        // Sleep until there is an item to pump, a finished connection to
        // reap, or nothing left at all during shutdown.
        work_cv_.wait(lock, [&] {
          for (const auto& c : connections_) {
            if (!c->queue.empty() || c->reader_done) return true;
          }
          return stopping_ && connections_.empty();
        });
        continue;  // re-reap / re-scan with fresh state
      }
      item = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    space_cv_.notify_all();
    ProcessItem(*conn, item);
  }
}

void FrameServer::ProcessItem(Connection& conn, const Item& item) {
  switch (item.type) {
    case NetFrameType::kData: {
      const uint64_t before = aggregator_.reports_ingested();
      const Status status = aggregator_.IngestFrame(item.payload);
      if (!status.ok()) {
        // A rejected frame left every lane untouched (shard contract);
        // count it, tell the client, and cut the connection — a client
        // producing corrupt envelopes cannot be trusted with the session.
        conn.corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, status);
        conn.socket.ShutdownBoth();
        break;
      }
      const uint64_t delta = aggregator_.reports_ingested() - before;
      conn.reports_ingested.fetch_add(delta, std::memory_order_relaxed);
      shard_frames_[pump_shard_].fetch_add(1, std::memory_order_relaxed);
      shard_reports_[pump_shard_].fetch_add(delta, std::memory_order_relaxed);
      pump_shard_ = (pump_shard_ + 1) % aggregator_.num_shards();
      break;
    }
    case NetFrameType::kSnapshot: {
      // Raw-lane snapshot of everything ingested so far (multi-epoch
      // streaming: snapshots merge bit-exactly across epochs).
      const std::vector<uint8_t> bytes = aggregator_.MergeShards().Serialize();
      std::lock_guard<std::mutex> g(conn.write_mu);
      if (!WriteNetFrame(conn.socket, NetFrameType::kSnapshotData, bytes)
               .ok()) {
        // The peer stopped reading (send timed out) or vanished; cut it so
        // the pump can never be parked on this socket again.
        conn.socket.ShutdownBoth();
      }
      break;
    }
    case NetFrameType::kFinalize: {
      {
        std::lock_guard<std::mutex> g(conn.write_mu);
        if (!WriteNetFrame(conn.socket, NetFrameType::kFinalizeOk, {}).ok()) {
          conn.socket.ShutdownBoth();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        finalize_requested_ = true;
      }
      finalize_cv_.notify_all();
      break;
    }
    case NetFrameType::kBye: {
      // Processed strictly after every frame this client sent before it, so
      // the ack below is the client's proof that its data is in the lanes.
      std::lock_guard<std::mutex> g(conn.write_mu);
      if (!WriteNetFrame(conn.socket, NetFrameType::kByeOk, {}).ok()) {
        conn.socket.ShutdownBoth();
      }
      break;
    }
    default:
      break;  // readers enqueue only the types above
  }
}

void FrameServer::WaitForFinalizeRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  finalize_cv_.wait(lock, [&] { return finalize_requested_; });
}

void FrameServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopping_ = true;
    // Disconnect whoever is still attached: readers blocked in recv see
    // EOF and exit, so Stop cannot hang on an idle or silent client. A
    // client that completed Finish() has already been fully ingested; any
    // frames the stragglers queued are still drained by the pump below.
    for (auto& conn : connections_) conn->socket.ShutdownBoth();
  }
  space_cv_.notify_all();
  work_cv_.notify_all();
  listener_.ShutdownBoth();
  acceptor_.join();
  // The pump drains every queue, then reaps (joins) every reader before it
  // exits — after this join no connection state remains.
  pump_.join();
  listener_.Close();
  stopped_ = true;
}

LdpJoinSketchServer FrameServer::Finalize() {
  LDPJS_CHECK(stopped_);     // queues are drained exactly when stopped
  LDPJS_CHECK(!finalized_);  // the global debias+transform happens once
  finalized_ = true;
  return aggregator_.Finalize();
}

ConnectionMetrics FrameServer::SnapshotConnection(
    const Connection& conn) const {
  ConnectionMetrics c;
  c.id = conn.id;
  c.active = !conn.reader_done;
  c.frames_received = conn.frames_received.load(std::memory_order_relaxed);
  c.bytes_received = conn.bytes_received.load(std::memory_order_relaxed);
  c.reports_ingested = conn.reports_ingested.load(std::memory_order_relaxed);
  c.corrupt_frames_rejected =
      conn.corrupt_frames.load(std::memory_order_relaxed);
  c.frames_shed = conn.frames_shed.load(std::memory_order_relaxed);
  c.queue_high_water = conn.queue_high_water.load(std::memory_order_relaxed);
  return c;
}

NetMetrics FrameServer::metrics() const {
  NetMetrics m;
  std::lock_guard<std::mutex> lock(mu_);
  m.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  m.handshakes_rejected = handshakes_rejected_.load(std::memory_order_relaxed);
  m.connections = departed_;  // final rows of reaped connections
  for (const auto& conn : connections_) {
    m.connections.push_back(SnapshotConnection(*conn));
  }
  for (const ConnectionMetrics& c : m.connections) {
    m.connections_active += c.active ? 1 : 0;
    m.frames_received += c.frames_received;
    m.bytes_received += c.bytes_received;
    m.reports_ingested += c.reports_ingested;
    m.corrupt_frames_rejected += c.corrupt_frames_rejected;
    m.frames_shed += c.frames_shed;
    m.queue_high_water = std::max(m.queue_high_water, c.queue_high_water);
  }
  for (size_t s = 0; s < shard_frames_.size(); ++s) {
    ShardMetrics shard;
    shard.frames = shard_frames_[s].load(std::memory_order_relaxed);
    shard.reports = shard_reports_[s].load(std::memory_order_relaxed);
    m.shards.push_back(shard);
  }
  return m;
}

}  // namespace ldpjs
