// LDPJoinSketch (paper §IV): a locally differentially private Fast-AGMS
// sketch for join size estimation.
//
// Client (Algorithm 1): sample a row j ~ U[k] and a Hadamard coordinate
// l ~ U[m]; encode the private value d as v[h_j(d)] = ξ_j(d); transform
// w = v·H_m; release y = b·w[l] with b = −1 w.p. 1/(e^ε+1). Because v is
// one-hot, w[l] = ξ_j(d)·H_m[h_j(d), l] and the client runs in O(1)
// (`Perturb`); the literal O(m log m) pipeline is kept as
// `PerturbReference` and produces identical output for identical RNG state.
//
// Server (Algorithm 2, "PriSk"): accumulate k·c_ε·y at [j, l]; when all
// reports are in, rotate every row back with H_m (Finalize). The finalized
// sketch behaves like a Fast-AGMS sketch in expectation (Theorem 2), so the
// join size is the median row inner product (Eq. 5) and frequencies follow
// Theorem 7.
#ifndef LDPJS_CORE_LDP_JOIN_SKETCH_H_
#define LDPJS_CORE_LDP_JOIN_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/serialize.h"
#include "core/params.h"

namespace ldpjs {

/// One perturbed user report: a ±1 plus the sketch coordinates it targets.
/// This is all a user ever releases: 1 + log2(k) + log2(m) bits.
struct LdpReport {
  int8_t y;    ///< ±1
  uint16_t j;  ///< sampled row in [0, k)
  uint32_t l;  ///< sampled Hadamard coordinate in [0, m)
};

/// Serializes a report into `writer` (wire format for client → server).
void EncodeReport(const LdpReport& report, BinaryWriter& writer);

/// Parses one report; fails with Corruption on truncated input.
Result<LdpReport> DecodeReport(BinaryReader& reader);

class LdpJoinSketchClient {
 public:
  /// `params.seed` must match the server's; epsilon > 0 is the LDP budget.
  LdpJoinSketchClient(const SketchParams& params, double epsilon);

  /// Algorithm 1 in O(1) via the closed-form Hadamard entry.
  LdpReport Perturb(uint64_t value, Xoshiro256& rng) const;

  /// Algorithm 1 exactly as written (materializes v, transforms, samples).
  /// Identical output to Perturb for identical RNG state; used by tests.
  LdpReport PerturbReference(uint64_t value, Xoshiro256& rng) const;

  const SketchParams& params() const { return params_; }
  double epsilon() const { return epsilon_; }
  /// Pr[b = −1] = 1/(e^ε + 1).
  double flip_probability() const { return flip_prob_; }
  const std::vector<RowHashes>& row_hashes() const { return rows_; }

 private:
  SketchParams params_;
  double epsilon_;
  double flip_prob_;
  std::vector<RowHashes> rows_;
};

class LdpJoinSketchServer {
 public:
  /// Must be constructed with the clients' params and epsilon.
  LdpJoinSketchServer(const SketchParams& params, double epsilon);

  /// Adds one client report: M[j, l] += k·c_ε·y. Invalid after Finalize.
  void Absorb(const LdpReport& report);

  /// Adds another server's raw sketch (distributed aggregation). Both must
  /// share params/epsilon and be un-finalized.
  void Merge(const LdpJoinSketchServer& other);

  /// Algorithm 2 line 6: every row is rotated back by H_m. Idempotent
  /// queries only after this.
  void Finalize();

  /// Eq. 5: median over rows of the row inner products. Both sketches must
  /// be finalized and share params.
  double JoinEstimate(const LdpJoinSketchServer& other) const;

  /// Theorem 5: with probability >= 1 - exp(-k/4), the join estimate is
  /// within  (4/sqrt(m)) · (F1(A) + (k·c_ε²-1)/2) · (F1(B) + (k·c_ε²-1)/2)
  /// of the truth, where F1 is each sketch's report count. Useful for
  /// confidence intervals on query answers.
  double TheoreticalErrorBound(const LdpJoinSketchServer& other) const;

  /// Theorem 7: f̂(d) = mean_j M[j, h_j(d)]·ξ_j(d). Unbiased.
  double FrequencyEstimate(uint64_t d) const;

  /// Frequencies for every value in [0, domain). O(domain·k).
  std::vector<double> EstimateAllFrequencies(uint64_t domain) const;

  /// Subtracts `total_mass / m` from every cell — removes the expected
  /// contribution of `total_mass` non-target FAP reports (Theorem 8).
  void SubtractUniformMass(double total_mass);

  const SketchParams& params() const { return params_; }
  double epsilon() const { return epsilon_; }
  double c_eps() const { return c_eps_; }
  uint64_t total_reports() const { return total_; }
  bool finalized() const { return finalized_; }
  double cell(int row, int col) const {
    return cells_[static_cast<size_t>(row) * static_cast<size_t>(params_.m) +
                  static_cast<size_t>(col)];
  }
  const std::vector<RowHashes>& row_hashes() const { return rows_; }
  size_t ByteSize() const { return cells_.size() * sizeof(double); }

  /// Binary round trip (aggregator persistence / cross-process shipping).
  std::vector<uint8_t> Serialize() const;
  static Result<LdpJoinSketchServer> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  SketchParams params_;
  double epsilon_;
  double c_eps_;
  uint64_t total_ = 0;
  bool finalized_ = false;
  std::vector<RowHashes> rows_;
  std::vector<double> cells_;  // row-major k x m
};

}  // namespace ldpjs

#endif  // LDPJS_CORE_LDP_JOIN_SKETCH_H_
