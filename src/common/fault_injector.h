// Deterministic fault injection for the wire stack — the chaos harness's
// foundation.
//
// Every fault-capable operation in the stack is a named *site*: a socket
// labeled "region0.up" checks the sites "region0.up.send" /
// "region0.up.recv" / "region0.up.connect" before each send / recv /
// connect. A FaultInjector decides, per (site, hit-count), whether that
// operation proceeds normally or suffers an injected fault:
//
//   kDrop          the write is swallowed (bytes vanish mid-stream; the
//                  peer desyncs and the connection must heal by retry)
//   kDelay         the operation is delayed by param milliseconds
//   kPartialWrite  a prefix of the bytes is written, then the connection
//                  is cut (the torn-frame case)
//   kCorrupt       one byte is flipped before the write (checksum /
//                  framing validation must catch it downstream)
//   kDisconnect    the socket is shut down and the operation fails
//   kRefuseConnect ConnectTcp fails before the SYN (a down peer)
//
// Determinism: a fault either comes from an explicit rule (site, hit) or
// from the seeded schedule, where the decision for hit N of a site is a
// pure function of (seed, site, N) — so ANY failure interleaving replays
// bit-exactly from its seed: same faults, same retries, same counters.
// Hit counters are per-site and process-wide, so determinism holds as
// long as the operations on each individual site are themselves ordered
// deterministically (the chaos scenarios drive the federation
// synchronously for exactly this reason).
//
// Production cost: injection is off unless a FaultInjector is installed
// (a relaxed atomic pointer load) AND the socket was labeled with a site
// (an empty-string check). Unlabeled sockets never pay the site lookup.
#ifndef LDPJS_COMMON_FAULT_INJECTOR_H_
#define LDPJS_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace ldpjs {

enum class FaultKind : uint8_t {
  kNone = 0,
  kDrop,
  kDelay,
  kPartialWrite,
  kCorrupt,
  kDisconnect,
  kRefuseConnect,
};

std::string_view FaultKindName(FaultKind kind);

/// The verdict for one operation: what to inject, with a kind-specific
/// parameter (delay millis for kDelay, corrupted byte index for kCorrupt).
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  uint64_t param = 0;
};

/// Per-site observability: how often the site was exercised and how often
/// a fault fired there. The chaos harness pins replay determinism on these.
struct FaultSiteStats {
  uint64_t hits = 0;
  uint64_t injected = 0;
};

class FaultInjector {
 public:
  /// An injector with no schedule: faults come only from AddRule.
  FaultInjector() = default;

  /// Seeded schedule: each (site, hit) decision is Bernoulli(rate) on
  /// Mix64(seed, site-hash, hit), with the kind drawn from the subset that
  /// applies to the site's operation (suffix ".send" / ".recv" /
  /// ".connect"). At most `max_faults` fire in total, so a schedule always
  /// lets the run complete — chaos delays and re-routes data, the retry
  /// machinery must ensure it never loses it.
  FaultInjector(uint64_t seed, double rate, uint64_t max_faults);

  /// Explicit targeted fault: the `hit`-th operation (0-based) on `site`
  /// suffers `kind`. Rules fire before (and independently of) the seeded
  /// schedule, and do not count against max_faults.
  void AddRule(std::string site, uint64_t hit, FaultKind kind,
               uint64_t param = 0);

  /// Called by an instrumented operation: counts the hit and returns the
  /// action to apply. Thread-safe.
  FaultAction Next(std::string_view site);

  uint64_t total_hits() const;
  uint64_t total_injected() const;
  std::map<std::string, FaultSiteStats> site_stats() const;
  /// Canonical "site=hits/injected site=..." line — two runs of the same
  /// seeded schedule must produce equal strings (the replay assertion).
  std::string StatsString() const;

  /// Process-global installation point the instrumented call sites check.
  /// Install(nullptr) disables injection. The caller owns the injector and
  /// must keep it alive (and quiesce instrumented threads) until after
  /// uninstalling — use ScopedFaultInjection.
  static void Install(FaultInjector* injector);
  static FaultInjector* Active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  struct Rule {
    uint64_t hit;
    FaultKind kind;
    uint64_t param;
  };

  /// The seeded decision for (site_hash, hit) — pure, no state.
  FaultAction ScheduledAction(std::string_view site, uint64_t site_hash,
                              uint64_t hit) const;

  uint64_t seed_ = 0;
  uint64_t rate_bits_ = 0;  ///< rate scaled to 2^32 for an integer compare
  uint64_t max_faults_ = 0;
  bool seeded_ = false;

  mutable Mutex mu_;
  std::map<std::string, FaultSiteStats, std::less<>> sites_
      LDPJS_GUARDED_BY(mu_);
  std::map<std::string, std::vector<Rule>, std::less<>> rules_
      LDPJS_GUARDED_BY(mu_);
  /// Scheduled faults fired so far (against max_faults_).
  uint64_t scheduled_injected_ LDPJS_GUARDED_BY(mu_) = 0;

  static std::atomic<FaultInjector*> active_;
};

/// RAII install/uninstall for tests and the chaos harness.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector) {
    FaultInjector::Install(injector);
  }
  ~ScopedFaultInjection() { FaultInjector::Install(nullptr); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_FAULT_INJECTOR_H_
