// Ablations for the design choices called out in DESIGN.md:
//   (1) JoinEst subtraction variants — group-scaled (ours) vs the paper's
//       literal full-table subtraction (deviation #2);
//   (2) value of the two-phase FAP separation — LDPJoinSketch+ vs plain
//       LDPJoinSketch vs "plus without separation" (theta so large that FI
//       is empty, making phase 2 a pure low-frequency sketch);
//   (3) O(1) client fast path vs the literal O(m log m) Algorithm-1
//       pipeline (same output, construction throughput differs).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/ldp_join_sketch.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Ablation studies (Zipf(1.1), eps=4, k=18, m=1024) ==\n\n");
  const uint64_t rows = std::min<uint64_t>(ScaledRows(40'000'000), 1'000'000);
  const JoinWorkload w = MakeZipfWorkload(1.1, 3'000'000, rows, 113);
  const double truth = ExactJoinSize(w.table_a, w.table_b);

  JoinMethodConfig base;
  base.epsilon = 4.0;
  base.sketch.k = 18;
  base.sketch.m = 1024;
  base.sketch.seed = 127;
  base.plus_sample_rate = 0.1;
  base.plus_threshold = 0.001;
  base.run_seed = 23;

  std::printf("-- (1) JoinEst subtraction variant --\n");
  PrintTableHeader({"variant", "AE", "RE"});
  {
    const ErrorStats ours = MeasureJoinError(
        JoinMethod::kLdpJoinSketchPlus, w.table_a, w.table_b, truth, base);
    PrintTableRow({"group-scaled", Sci(ours.mean_ae), Sci(ours.mean_re)});
    JoinMethodConfig literal = base;
    literal.plus_join_est.paper_literal_subtraction = true;
    const ErrorStats paper = MeasureJoinError(
        JoinMethod::kLdpJoinSketchPlus, w.table_a, w.table_b, truth, literal);
    PrintTableRow({"paper-literal", Sci(paper.mean_ae), Sci(paper.mean_re)});
  }

  std::printf("\n-- (2) value of frequency-aware separation --\n");
  PrintTableHeader({"variant", "AE", "RE"});
  {
    const ErrorStats plus = MeasureJoinError(
        JoinMethod::kLdpJoinSketchPlus, w.table_a, w.table_b, truth, base);
    PrintTableRow({"LDPJoinSketch+", Sci(plus.mean_ae), Sci(plus.mean_re)});
    const ErrorStats plain = MeasureJoinError(
        JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, truth, base);
    PrintTableRow({"LDPJoinSketch", Sci(plain.mean_ae), Sci(plain.mean_re)});
    JoinMethodConfig no_fi = base;
    no_fi.plus_threshold = 0.9;  // FI is empty → no separation happens
    const ErrorStats off = MeasureJoinError(
        JoinMethod::kLdpJoinSketchPlus, w.table_a, w.table_b, truth, no_fi);
    PrintTableRow({"plus, FI empty", Sci(off.mean_ae), Sci(off.mean_re)});
  }

  std::printf("\n-- (3) client fast path vs literal Algorithm 1 --\n");
  PrintTableHeader({"variant", "reports/s"});
  {
    SketchParams params = base.sketch;
    LdpJoinSketchClient client(params, base.epsilon);
    const size_t n = 200000;
    Xoshiro256 rng(31);
    auto time_path = [&](auto&& perturb) {
      const auto start = std::chrono::steady_clock::now();
      int8_t sink = 0;
      for (size_t i = 0; i < n; ++i) {
        sink ^= perturb(w.table_a[i % w.table_a.size()], rng).y;
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      // Keep the compiler from dropping the loop.
      if (sink == 42) std::printf("%s", "");
      return static_cast<double>(n) / seconds;
    };
    const double fast = time_path([&](uint64_t v, Xoshiro256& r) {
      return client.Perturb(v, r);
    });
    const double reference = time_path([&](uint64_t v, Xoshiro256& r) {
      return client.PerturbReference(v, r);
    });
    PrintTableRow({"fast O(1)", Sci(fast)});
    PrintTableRow({"literal O(m log m)", Sci(reference)});
    std::printf("speedup: %.1fx\n", fast / reference);
  }

  std::printf("\nshape check: (1) group-scaled subtraction no worse than "
              "literal; (2) separation reduces error on skewed data; "
              "(3) fast path orders of magnitude quicker, same output.\n");
  return 0;
}
