#include "obs/events.h"

#include "obs/metrics.h"

namespace ldpjs {

namespace {

void AppendEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control bytes would break the JSONL line contract
    } else {
      out += c;
    }
  }
}

void AppendStringField(std::string& out, const char* name,
                       const std::string& value) {
  out += ",\"";
  out += name;
  out += "\":\"";
  AppendEscaped(out, value);
  out += '"';
}

}  // namespace

std::string EventToJson(const ObsEvent& event) {
  std::string out = "{\"unix_ns\":";
  out += std::to_string(event.unix_ns);
  AppendStringField(out, "kind", event.kind);
  out += ",\"region_id\":";
  out += std::to_string(event.region_id);
  AppendStringField(out, "from", event.from);
  AppendStringField(out, "to", event.to);
  AppendStringField(out, "cause", event.cause);
  out += '}';
  return out;
}

void EventLog::Record(ObsEvent event) {
  if (event.unix_ns == 0) event.unix_ns = NowNanos();
  MutexLock lock(mu_);
  ++total_;
  ring_.push_back(std::move(event));
  if (ring_.size() > kCapacity) ring_.pop_front();
}

std::vector<ObsEvent> EventLog::Collect() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t EventLog::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

uint64_t EventLog::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

uint64_t EventLog::dropped() const {
  MutexLock lock(mu_);
  return total_ - ring_.size();
}

std::string EventLog::ToJsonArray() const {
  const std::vector<ObsEvent> events = Collect();
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ',';
    out += EventToJson(events[i]);
  }
  out += ']';
  return out;
}

std::string EventLog::ToJsonl() const {
  const std::vector<ObsEvent> events = Collect();
  std::string out;
  for (const ObsEvent& event : events) {
    out += EventToJson(event);
    out += '\n';
  }
  return out;
}

}  // namespace ldpjs
