// Approximate query processing on private sketches (paper §I, application
// 3, and the conclusion's "general join aggregation" direction): once an
// LDPJoinSketch exists for a column, several relational estimates come for
// free without touching users again:
//
//   COUNT(*)  WHERE A BETWEEN lo AND hi    — range-sum of Thm-7 frequencies
//   COUNT(DISTINCT-ish support)            — values with f̂ above a noise floor
//   JOIN COUNT WHERE key BETWEEN lo AND hi — per-value product accumulation
//                                            restricted to the range
//   SUM(w(A)) for a public weight function — weighted frequency sum
//
// These estimators accumulate per-value sketch noise over the queried
// range (like the frequency-oracle baselines do over the whole domain), so
// they are most accurate for selective predicates; the unrestricted join
// should always use LdpJoinSketchServer::JoinEstimate.
#ifndef LDPJS_CORE_AQP_H_
#define LDPJS_CORE_AQP_H_

#include <cstdint>
#include <functional>

#include "core/ldp_join_sketch.h"

namespace ldpjs {

/// Closed value range [lo, hi] over the join-attribute domain.
struct ValueRange {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool Contains(uint64_t v) const { return v >= lo && v <= hi; }
  uint64_t Width() const { return hi - lo + 1; }
};

/// Estimated COUNT(*) WHERE A in range: Σ_{d in range} f̂(d).
/// Requires a finalized sketch and range.hi < domain.
double RangeCountEstimate(const LdpJoinSketchServer& sketch,
                          const ValueRange& range);

/// Estimated SUM(weight(A)) WHERE A in range for a public per-value weight.
double RangeWeightedSumEstimate(const LdpJoinSketchServer& sketch,
                                const ValueRange& range,
                                const std::function<double(uint64_t)>& weight);

/// Estimated join size restricted to keys in the range:
/// Σ_{d in range} f̂_A(d) · f̂_B(d). Sketches must share params.
double PredicateJoinEstimate(const LdpJoinSketchServer& sketch_a,
                             const LdpJoinSketchServer& sketch_b,
                             const ValueRange& range);

/// Values in the range whose estimated frequency exceeds `floor` — a
/// noise-aware support estimate. `floor` should be a few multiples of the
/// per-value noise std c_ε·sqrt(n·k)/sqrt(k·m)... practical choice:
/// NoiseFloorSuggestion() below.
uint64_t SupportSizeEstimate(const LdpJoinSketchServer& sketch,
                             const ValueRange& range, double floor);

/// ~3 standard deviations of the Thm-7 frequency estimator for this sketch.
/// Each finalized cell carries sampling noise of variance c_ε²·n·k; the
/// mean over the k independent rows therefore has std c_ε·sqrt(n), giving
/// the floor 3·c_ε·sqrt(total_reports).
double NoiseFloorSuggestion(const LdpJoinSketchServer& sketch);

}  // namespace ldpjs

#endif  // LDPJS_CORE_AQP_H_
