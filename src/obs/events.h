// Structured operational event log: a bounded ring of JSONL-serializable
// records for the state changes a counter cannot express — health
// transitions (with the breached rule as `cause`), upstream reconnects,
// spool replays after a crash-restart, idle-connection reaps, and shed
// bursts. Dashboards read rates from the metrics registry; incident
// timelines read WHAT changed and WHY from here.
//
// Each FrameServer owns one EventLog (a process-global ring would
// interleave the regions and the central when tests run a whole federation
// in one process). The ring keeps the newest kCapacity events; `dropped()`
// says how many scrolled off, so a consumer can tell a quiet system from a
// wrapped ring.
#ifndef LDPJS_OBS_EVENTS_H_
#define LDPJS_OBS_EVENTS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace ldpjs {

struct ObsEvent {
  uint64_t unix_ns = 0;  ///< stamped by Record() when left 0
  /// "health_transition", "reconnect", "spool_replay", "idle_reap", ...
  std::string kind;
  uint32_t region_id = 0;
  /// Health transitions: the state names ("OK" → "DEGRADED"); empty else.
  std::string from;
  std::string to;
  /// Why: the breached health rules, the reconnect's trigger error, the
  /// replayed epoch count — always human-readable, never a bare code.
  std::string cause;
};

/// One event as a JSON object (one JSONL line without the newline).
std::string EventToJson(const ObsEvent& event);

class EventLog {
 public:
  static constexpr size_t kCapacity = 256;

  /// Appends one event, stamping `unix_ns` if the caller left it 0. The
  /// oldest event is dropped once the ring is full.
  void Record(ObsEvent event);

  /// Oldest-first copy of the ring.
  std::vector<ObsEvent> Collect() const;

  size_t size() const;
  /// Events recorded over the ring's lifetime, including dropped ones.
  uint64_t total_recorded() const;
  uint64_t dropped() const;

  /// JSON array of the ring, oldest first (the stats JSON "events" value).
  std::string ToJsonArray() const;
  /// One JSON object per line, oldest first (the JSONL export shape).
  std::string ToJsonl() const;

 private:
  mutable Mutex mu_;
  std::deque<ObsEvent> ring_ LDPJS_GUARDED_BY(mu_);
  uint64_t total_ LDPJS_GUARDED_BY(mu_) = 0;
};

}  // namespace ldpjs

#endif  // LDPJS_OBS_EVENTS_H_
