#include "common/hash.h"

#include "common/random.h"

namespace ldpjs {

PolynomialHash::PolynomialHash(uint64_t seed, int degree_plus_one) {
  LDPJS_CHECK(degree_plus_one >= 1);
  coeffs_.resize(static_cast<size_t>(degree_plus_one));
  uint64_t sm = seed;
  for (auto& c : coeffs_) {
    do {
      c = SplitMix64Next(sm) & kMersenne61;
    } while (c >= kMersenne61);  // rejection keeps the draw uniform in [0, p)
  }
  // Non-zero leading coefficient so the family has full degree.
  while (coeffs_[0] == 0) {
    coeffs_[0] = SplitMix64Next(sm) & kMersenne61;
    if (coeffs_[0] >= kMersenne61) coeffs_[0] = 0;
  }
}

uint64_t PolynomialHash::operator()(uint64_t x) const {
  uint64_t xr = x % kMersenne61;
  uint64_t acc = coeffs_[0];
  for (size_t i = 1; i < coeffs_.size(); ++i) {
    acc = internal::AddMod61(internal::MulMod61(acc, xr), coeffs_[i]);
  }
  return acc;
}

BucketHash::BucketHash(uint64_t seed, uint64_t m) : m_(m) {
  LDPJS_CHECK(m >= 1);
  uint64_t sm = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) entry = SplitMix64Next(sm);
  }
}

uint64_t BucketHash::operator()(uint64_t x) const {
  uint64_t h = 0;
  for (size_t byte = 0; byte < 8; ++byte) {
    h ^= tables_[byte][(x >> (8 * byte)) & 0xff];
  }
  // Multiply-shift reduction onto [0, m): unbiased up to O(m / 2^64).
  return static_cast<uint64_t>((static_cast<__uint128_t>(h) * m_) >> 64);
}

SignHash::SignHash(uint64_t seed) : poly_(seed, /*degree_plus_one=*/4) {}

int SignHash::operator()(uint64_t x) const {
  // Use a mid bit of the 4-wise independent value as the sign bit.
  return (poly_(x) >> 30) & 1 ? +1 : -1;
}

std::vector<RowHashes> MakeRowHashes(uint64_t seed, int k, uint64_t m) {
  LDPJS_CHECK(k >= 1);
  std::vector<RowHashes> rows;
  rows.reserve(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    const uint64_t row_seed =
        Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(j) + 1)));
    rows.push_back(RowHashes{BucketHash(Mix64(row_seed ^ 0xb7e151628aed2a6bULL), m),
                             SignHash(Mix64(row_seed ^ 0x243f6a8885a308d3ULL))});
  }
  return rows;
}

TabulationHash::TabulationHash(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) entry = SplitMix64Next(sm);
  }
}

uint64_t TabulationHash::operator()(uint64_t x) const {
  uint64_t h = 0;
  for (size_t byte = 0; byte < 8; ++byte) {
    h ^= tables_[byte][(x >> (8 * byte)) & 0xff];
  }
  return h;
}

}  // namespace ldpjs
