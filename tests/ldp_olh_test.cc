#include "ldp/olh.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"

namespace ldpjs {
namespace {

TEST(FlhTest, DefaultGIsOlhOptimal) {
  FlhParams params;
  params.epsilon = 3.0;
  FlhClient client(params);
  EXPECT_EQ(client.g(), static_cast<uint32_t>(std::round(std::exp(3.0) + 1.0)));
}

TEST(FlhTest, SmallEpsilonClampsGToTwo) {
  FlhParams params;
  params.epsilon = 0.1;
  FlhClient client(params);
  EXPECT_EQ(client.g(), 2u);
}

TEST(FlhTest, ExplicitGRespected) {
  FlhParams params;
  params.epsilon = 1.0;
  params.g = 16;
  FlhClient client(params);
  EXPECT_EQ(client.g(), 16u);
}

TEST(FlhTest, ReportsInRange) {
  FlhParams params;
  params.epsilon = 2.0;
  params.pool_size = 32;
  FlhClient client(params);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const FlhReport r = client.Perturb(static_cast<uint64_t>(i), rng);
    EXPECT_LT(r.hash_index, 32u);
    EXPECT_LT(r.value, client.g());
  }
}

TEST(FlhTest, ClientAndServerShareHashPool) {
  FlhParams params;
  params.epsilon = 2.0;
  params.pool_size = 8;
  params.seed = 77;
  FlhClient c1(params), c2(params);
  for (uint32_t i = 0; i < 8; ++i) {
    for (uint64_t v = 0; v < 100; ++v) {
      EXPECT_EQ(c1.HashValue(i, v), c2.HashValue(i, v));
    }
  }
}

TEST(FlhTest, FrequencyCalibrationTracksHeavyItems) {
  FlhParams params;
  params.epsilon = 4.0;
  params.pool_size = 64;
  params.seed = 5;
  const uint64_t domain = 200;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 150000, 9);
  const auto est = FlhEstimateFrequencies(w.table_a, params, 31);
  const auto freq = w.table_a.Frequencies();
  for (uint64_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(est[d] / static_cast<double>(freq[d]), 1.0, 0.15) << "d=" << d;
  }
}

TEST(FlhTest, AbsentValueEstimatesNearZero) {
  FlhParams params;
  params.epsilon = 4.0;
  params.pool_size = 64;
  const Column c(std::vector<uint64_t>(50000, 1), 1000);
  const auto est = FlhEstimateFrequencies(c, params, 7);
  EXPECT_NEAR(est[999] / 50000.0, 0.0, 0.05);
  EXPECT_NEAR(est[1] / 50000.0, 1.0, 0.05);
}

TEST(FlhTest, LdpRatioBoundClosedForm) {
  // GRR over g outputs: max ratio = e^eps by construction.
  FlhParams params;
  params.epsilon = 2.5;
  FlhClient client(params);
  const double g = client.g();
  const double e = std::exp(params.epsilon);
  const double p = e / (e + g - 1.0);
  const double q = (1.0 - p) / (g - 1.0);
  EXPECT_LE(p / q, e * (1.0 + 1e-9));
}

TEST(FlhServerTest, TotalReportsCounted) {
  FlhParams params;
  params.epsilon = 1.0;
  params.pool_size = 4;
  FlhClient client(params);
  FlhServer server(params);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) server.Absorb(client.Perturb(5, rng));
  EXPECT_EQ(server.total_reports(), 100u);
}

TEST(FlhDeathTest, InvalidGAborts) {
  FlhParams params;
  params.epsilon = 1.0;
  params.g = 1;
  EXPECT_DEATH(FlhClient{params}, "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
