#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ldpjs {
namespace {

TEST(MedianTest, OddCount) {
  std::vector<double> v{5, 1, 3};
  EXPECT_EQ(Median(v), 3);
}

TEST(MedianTest, EvenCountAveragesMiddle) {
  std::vector<double> v{4, 1, 3, 2};
  EXPECT_EQ(Median(v), 2.5);
}

TEST(MedianTest, SingleElement) {
  std::vector<double> v{7};
  EXPECT_EQ(Median(v), 7);
}

TEST(MedianTest, RobustToOutlier) {
  std::vector<double> v{1, 2, 3, 4, 1e12};
  EXPECT_EQ(Median(v), 3);
}

TEST(MedianDeathTest, EmptyAborts) {
  std::vector<double> v;
  EXPECT_DEATH(Median(v), "LDPJS_CHECK failed");
}

TEST(MeanTest, Basic) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_EQ(Mean(v), 2.5);
}

TEST(SampleVarianceTest, MatchesClosedForm) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  // mean 5, squared devs sum = 32, n-1 = 7.
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
}

TEST(QuantileTest, EndpointsAndMiddle) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_EQ(Quantile(v, 0.0), 10);
  EXPECT_EQ(Quantile(v, 1.0), 50);
  EXPECT_EQ(Quantile(v, 0.5), 30);
  EXPECT_EQ(Quantile(v, 0.25), 20);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_NEAR(Quantile(v, 0.3), 3.0, 1e-12);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  std::vector<double> v{1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  RunningStats rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), SampleVariance(v), 1e-12);
  EXPECT_EQ(rs.min(), -2.0);
  EXPECT_EQ(rs.max(), 7.5);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
  EXPECT_EQ(rs.min(), 5.0);
  EXPECT_EQ(rs.max(), 5.0);
}

TEST(ErrorMetricsTest, AbsoluteAndRelative) {
  EXPECT_EQ(AbsoluteError(100, 90), 10);
  EXPECT_EQ(AbsoluteError(90, 100), 10);
  EXPECT_NEAR(RelativeError(200, 150), 0.25, 1e-12);
}

TEST(ErrorMetricsDeathTest, RelativeErrorZeroTruthAborts) {
  EXPECT_DEATH(RelativeError(0, 5), "LDPJS_CHECK failed");
}

TEST(MseTest, MatchesHandComputation) {
  std::vector<double> truth{1, 2, 3};
  std::vector<double> est{2, 2, 5};
  EXPECT_NEAR(MeanSquaredError(truth, est), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
}

TEST(MseDeathTest, MismatchedLengthsAbort) {
  std::vector<double> a{1, 2};
  std::vector<double> b{1};
  EXPECT_DEATH(MeanSquaredError(a, b), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
