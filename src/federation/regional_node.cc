#include "federation/regional_node.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/random.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ldpjs {

namespace {

/// Per-region jitter stream: two regions with identical options must not
/// sleep in lockstep against a recovering central.
BackoffOptions RegionBackoff(const BackoffOptions& base, uint32_t region_id) {
  BackoffOptions options = base;
  options.seed = Mix64(base.seed ^ (0x5E6100AALL + region_id));
  return options;
}

}  // namespace

RegionalNode::RegionalNode(const SketchParams& params, double epsilon,
                           const RegionalNodeOptions& options)
    : params_(params),
      epsilon_(epsilon),
      options_(options),
      server_(params, epsilon, [&, this] {
        FrameServerOptions server_options = options.server;
        // A STATS scrape of the regional ingest port reports this node's
        // augmented metrics() — ship retries, backoff, spool traffic — not
        // just the bare server counters. Safe to capture `this`: the
        // source is only invoked by a running server, after construction.
        server_options.stats_metrics_source = [this] { return metrics(); };
        return server_options;
      }()) {
  LDPJS_CHECK(options_.max_ship_attempts >= 1);
  const std::string region = std::to_string(options_.region_id);
  ship_rtt_hist_ = MetricsRegistry::Default().GetHistogram(
      "region" + region + "_ship_rtt_ns");
  spool_replay_hist_ = MetricsRegistry::Default().GetHistogram(
      "region" + region + "_spool_replay_ns");
  // Epoch numbers start at 0 for every incarnation and sync with the
  // central's per-region high-water on each (re)connect (AdoptCentralEpoch)
  // — deterministic and collision-free by construction, where the previous
  // wall-clock seeding silently lost data on a same-tick restart or a
  // backwards clock step, and destroyed cross-region epoch alignment (each
  // region's numbers started at an arbitrary timestamp).
}

RegionalNode::~RegionalNode() {
  // Best-effort teardown: never blocks on an unreachable central. Data not
  // shipped yet is lost with the process — call FlushAndStop for the
  // guaranteed flush.
  if (scheduler_) scheduler_->Stop();
  server_.Stop();
}

Status RegionalNode::Start() {
  if (!options_.spool_dir.empty()) {
    // Recover before anything ships: epochs a crashed predecessor cut but
    // never got acked re-enter the pending queue with their attempted
    // flags intact, and our numbering resumes above them. The first
    // (re)connect's AdoptCentralEpoch then reconciles with the central —
    // attempted epochs retry under their frozen numbers (the dedup
    // resolves merged-but-unacked to exactly-once), un-attempted ones
    // renumber safely.
    MutexLock lock(ship_mu_);
    const uint64_t replay_start_ns = ObsEnabled() ? NowNanos() : 0;
    std::vector<SpoolEntry> recovered;
    LDPJS_RETURN_IF_ERROR(
        spool_.Open(options_.spool_dir, options_.region_id, &recovered));
    for (SpoolEntry& entry : recovered) {
      next_epoch_ = std::max(next_epoch_, entry.epoch + 1);
      // The recovered trace context (kTrace record) rides the replayed
      // push, so crash recovery is visible in the latency series instead
      // of silently dropping the sample.
      pending_.push_back(PendingSnapshot{
          entry.epoch, std::move(entry.raw_sketch), entry.attempted,
          TraceContext{entry.trace_id, entry.origin_ns}});
    }
    if (replay_start_ns != 0) {
      const uint64_t now = NowNanos();
      spool_replay_hist_->Record(now > replay_start_ns
                                     ? now - replay_start_ns
                                     : 0);
    }
    if (!recovered.empty()) {
      ObsEvent event;
      event.kind = "spool_replay";
      event.region_id = options_.region_id;
      event.cause = std::to_string(recovered.size()) +
                    " pending epochs rebuilt from spool";
      server_.events().Record(std::move(event));
    }
  }
  LDPJS_RETURN_IF_ERROR(server_.Start());
  if (options_.epoch_millis > 0) {
    scheduler_ = std::make_unique<EpochScheduler>(
        std::chrono::milliseconds(options_.epoch_millis), [this](uint64_t) {
          // A failed ship keeps its snapshots pending; the next tick (or
          // the final flush) resumes them, so a tick never loses data.
          (void)CutAndShip();
        });
    scheduler_->Start();
  }
  return Status::OK();
}

Status RegionalNode::CutAndShip() {
  MutexLock lock(ship_mu_);
  if (flushed_) {
    return Status::FailedPrecondition("region already flushed");
  }
  ShardedAggregator::EpochCut cut = server_.CutEpochSnapshot();
  // Claimed exactly once per cut: the oldest sampled trace absorbed into
  // this snapshot rides its EPOCH_PUSH upstream, origin intact.
  const TraceContext cut_trace = server_.TakeCutTrace();
  const uint64_t epoch = next_epoch_++;
  if (cut.reports > 0) {
    pending_.push_back(PendingSnapshot{epoch, std::move(cut.raw_sketch),
                                       /*attempted=*/false, cut_trace});
    // Write-ahead: the snapshot is durable before the only other copy (the
    // queue entry) exists — a crash anywhere after this line replays it.
    SpoolAppendLocked(pending_.back());
  } else if (!pending_.empty() && pending_.back().raw_sketch.empty() &&
             !pending_.back().attempted) {
    // Consecutive idle cuts coalesce into one heartbeat carrying the
    // newest epoch number — an idle spell costs one 12-byte push, not one
    // per tick.
    pending_.back().epoch = epoch;
  } else {
    // Empty-epoch heartbeat (zero sketch bytes): nothing to merge, but
    // the central must still see this region's epoch clock advance or an
    // idle region would freeze the windowed view's aligned frontier — and
    // stale pending snapshots would pile up at every active region.
    pending_.push_back(
        PendingSnapshot{epoch, {}, /*attempted=*/false, TraceContext{}});
  }
  return ShipPendingLocked();
}

Status RegionalNode::ShipPendingLocked() {
  int attempts = 0;
  Backoff backoff_state(RegionBackoff(options_.ship_backoff,
                                      options_.region_id));
  auto backoff = [&](const Status& status) -> Status {
    ++ship_retries_;
    if (++attempts >= options_.max_ship_attempts) {
      return Status::Unavailable(
          "central unreachable after " + std::to_string(attempts) +
          " ship attempts (" + std::to_string(pending_.size()) +
          " snapshots pending, none lost): " + status.ToString());
    }
    const uint64_t before = backoff_state.total_micros();
    backoff_state.SleepNext();
    ship_backoff_micros_ += backoff_state.total_micros() - before;
    return Status::OK();
  };
  while (!pending_.empty()) {
    if (!upstream_) {
      FrameSender::Options sender_options;
      sender_options.announce_region = true;
      sender_options.region_id = options_.region_id;
      sender_options.recv_timeout_seconds =
          options_.upstream_recv_timeout_seconds;
      sender_options.fault_site = options_.upstream_fault_site;
      auto sender =
          FrameSender::Connect(options_.central_host, options_.central_port,
                               params_, epsilon_, sender_options);
      if (!sender.ok()) {
        LDPJS_RETURN_IF_ERROR(backoff(sender.status()));
        continue;
      }
      upstream_.emplace(std::move(*sender));
      if (had_upstream_) {
        ObsEvent event;
        event.kind = "reconnect";
        event.region_id = options_.region_id;
        event.cause = "upstream session re-established to central";
        server_.events().Record(std::move(event));
      }
      had_upstream_ = true;
      // The HELLO_OK carried the central's next-expected epoch for this
      // region — the restart/collision sync.
      AdoptCentralEpoch(upstream_->region_next_epoch());
    }
    PendingSnapshot& snap = pending_.front();
    // From here the snapshot's number is frozen: the push may merge even
    // if we never see the ack, and only retrying the same (region, epoch)
    // resolves that ambiguity to exactly-once. The frozen number must hit
    // the spool BEFORE the wire — a crash between the push and the ack
    // must replay the SAME epoch, never renumber a possibly-merged one.
    if (!snap.attempted) {
      SpoolMarkAttemptedLocked(snap);
      snap.attempted = true;
    }
    const uint64_t ship_start_ns = ObsEnabled() ? NowNanos() : 0;
    auto ack = upstream_->PushEpochSnapshotTraced(
        options_.region_id, snap.epoch, snap.raw_sketch, snap.trace);
    if (!ack.ok()) {
      // Outcome unknown (the connection may have died after the central
      // merged but before we read the ack): reconnect and push the same
      // (region, epoch) again — the central's dedup makes it exactly-once.
      upstream_.reset();
      LDPJS_RETURN_IF_ERROR(backoff(ack.status()));
      continue;
    }
    ++epochs_shipped_;
    if (ship_start_ns != 0) {
      const uint64_t now = NowNanos();
      const uint64_t rtt = now > ship_start_ns ? now - ship_start_ns : 0;
      ship_rtt_hist_->Record(rtt);
      if (snap.trace.active()) {
        TraceLog::Global().Record(snap.trace.trace_id, "regional_ship",
                                  ship_start_ns, now);
      }
    }
    if (ack->code == EpochPushAckCode::kDuplicate) {
      ++duplicate_acks_;  // a retry resolved to exactly-once
    }
    // Track the central's high-water as it advances, so future cuts are
    // numbered above everything it has applied even mid-session.
    next_epoch_ = std::max(next_epoch_, ack->next_epoch);
    snapshot_bytes_shipped_ += snap.raw_sketch.size();
    SpoolMarkShippedLocked(snap);
    pending_.pop_front();
  }
  MaybePushStatsLocked(/*force=*/false);
  return Status::OK();
}

FleetSnapshot RegionalNode::BuildStatsSnapshotLocked() const {
  FleetSnapshot snap;
  snap.region_id = options_.region_id;
  snap.captured_unix_ns = NowNanos();
  snap.stats = MetricsRegistry::Default().TakeSnapshot();
  // The synthetic net_* series: the central's health evaluator
  // (SignalsFromSnapshot) reads exactly these names, so a pushed snapshot
  // carries its own health inputs instead of the central re-scraping.
  const NetMetrics m = server_.metrics();
  snap.stats.counters.emplace_back("net_frames_received", m.frames_received);
  snap.stats.counters.emplace_back("net_frames_shed", m.frames_shed);
  snap.stats.counters.emplace_back("net_corrupt_frames_rejected",
                                   m.corrupt_frames_rejected);
  snap.stats.counters.emplace_back("net_reports_ingested",
                                   m.reports_ingested);
  snap.stats.gauges.emplace_back("net_frontier_epoch", next_epoch_);
  snap.stats.gauges.emplace_back("net_pending_epochs", pending_.size());
  return snap;
}

void RegionalNode::MaybePushStatsLocked(bool force) {
  if (!options_.push_stats || !upstream_) return;
  // The version gate IS the interop story: against a v4-or-older central
  // the session never carries a v5 frame, byte for byte.
  if (upstream_->negotiated_version() < 5) return;
  const uint64_t now = NowNanos();
  const uint64_t period_ns =
      static_cast<uint64_t>(options_.stats_push_period_ms) * 1000000ull;
  if (!force && last_stats_push_ns_ != 0 &&
      now - last_stats_push_ns_ < period_ns) {
    return;
  }
  const Status pushed = upstream_->PushStats(BuildStatsSnapshotLocked());
  if (pushed.ok()) {
    last_stats_push_ns_ = now;
    ++stats_pushes_;
  } else {
    // The session's state is ambiguous after a failed exchange; drop it so
    // the next ship reconnects. Data is untouched — a lost stats push just
    // means the central's row for this region ages until the next one.
    ++stats_push_failures_;
    upstream_.reset();
  }
}

void RegionalNode::SpoolAppendLocked(const PendingSnapshot& snap) {
  if (!spool_.is_open() || snap.raw_sketch.empty()) return;
  if (!spool_.AppendSnapshot(snap.epoch, snap.raw_sketch).ok()) {
    ++spool_errors_;  // durability degraded; keep shipping from memory
  } else if (snap.trace.active() &&
             !spool_
                  .RecordTrace(snap.epoch, snap.trace.trace_id,
                               snap.trace.origin_ns)
                  .ok()) {
    ++spool_errors_;
  }
}

void RegionalNode::SpoolMarkAttemptedLocked(const PendingSnapshot& snap) {
  if (!spool_.is_open() || snap.raw_sketch.empty()) return;
  if (!spool_.MarkAttempted(snap.epoch).ok()) ++spool_errors_;
}

void RegionalNode::SpoolMarkShippedLocked(const PendingSnapshot& snap) {
  if (!spool_.is_open() || snap.raw_sketch.empty()) return;
  if (!spool_.MarkShipped(snap.epoch).ok()) ++spool_errors_;
}

void RegionalNode::AdoptCentralEpoch(uint64_t central_next_epoch) {
  // Renumber pending snapshots the central would otherwise silently dedup
  // away: anything un-attempted and numbered below its next-expected epoch
  // moves up (in order, preserving gaps above the floor). Attempted
  // snapshots keep their number — their push may already have merged, and
  // renumbering them would turn the dedup's exactly-once into
  // double-counting.
  uint64_t floor = central_next_epoch;
  for (PendingSnapshot& snap : pending_) {
    if (snap.attempted) {
      floor = std::max(floor, snap.epoch + 1);
      continue;
    }
    if (snap.epoch < floor) {
      if (spool_.is_open() && !snap.raw_sketch.empty() &&
          !spool_.RecordRenumber(snap.epoch, floor).ok()) {
        ++spool_errors_;
      }
      snap.epoch = floor;
      ++epochs_renumbered_;
    }
    floor = snap.epoch + 1;
  }
  next_epoch_ = std::max(next_epoch_, floor);
}

Status RegionalNode::FlushAndStop() {
  // The scheduler's tick takes ship_mu_, so stop it before locking.
  if (scheduler_) scheduler_->Stop();
  // Stop drains every queued frame into the lanes, so the final cut below
  // holds everything any client pushed to this region.
  server_.Stop();
  MutexLock lock(ship_mu_);
  if (flushed_) return Status::OK();
  ShardedAggregator::EpochCut cut = server_.CutEpochSnapshot();
  const TraceContext cut_trace = server_.TakeCutTrace();
  const uint64_t epoch = next_epoch_++;
  if (cut.reports > 0) {
    pending_.push_back(PendingSnapshot{epoch, std::move(cut.raw_sketch),
                                       /*attempted=*/false, cut_trace});
    SpoolAppendLocked(pending_.back());
  }
  // A failed ship leaves flushed_ false with the snapshots still pending —
  // FlushAndStop can be called again once the central is reachable.
  LDPJS_RETURN_IF_ERROR(ShipPendingLocked());
  // Final stats push while the session is still up: the central's fleet
  // view sees this region's terminal counters, not a mid-run snapshot.
  MaybePushStatsLocked(/*force=*/true);
  flushed_ = true;
  if (options_.forward_finalize) {
    // Retried at-least-once, counted exactly-once: the FINALIZE carries
    // this region's id and the central counts each region a single time,
    // so a retry after a lost FINALIZE_OK can never end a multi-region
    // collection early. (The data barrier is the acked EPOCH_PUSHes
    // above; this is the coordination barrier.)
    int attempts = 0;
    Backoff backoff_state(RegionBackoff(options_.ship_backoff,
                                        options_.region_id));
    auto backoff = [&] {
      const uint64_t before = backoff_state.total_micros();
      backoff_state.SleepNext();
      ship_backoff_micros_ += backoff_state.total_micros() - before;
      ++ship_retries_;
    };
    for (;;) {
      if (!upstream_) {
        FrameSender::Options sender_options;
        sender_options.recv_timeout_seconds =
            options_.upstream_recv_timeout_seconds;
        sender_options.fault_site = options_.upstream_fault_site;
        auto sender = FrameSender::Connect(options_.central_host,
                                           options_.central_port, params_,
                                           epsilon_, sender_options);
        if (!sender.ok()) {
          if (++attempts >= options_.max_ship_attempts) {
            return sender.status();
          }
          backoff();
          continue;
        }
        upstream_.emplace(std::move(*sender));
      }
      const Status finalized =
          upstream_->RequestFinalizeAsRegion(options_.region_id);
      upstream_.reset();
      if (finalized.ok()) break;
      if (++attempts >= options_.max_ship_attempts) return finalized;
      backoff();
    }
  } else if (upstream_) {
    (void)upstream_->Finish();  // best-effort BYE; the pushes are acked
    upstream_.reset();
  }
  return Status::OK();
}

NetMetrics RegionalNode::metrics() const {
  NetMetrics m = server_.metrics();
  MutexLock lock(ship_mu_);
  m.retries_attempted += ship_retries_;
  m.backoff_millis += ship_backoff_micros_ / 1000;
  m.spool_bytes_written = spool_.bytes_written();
  m.spool_bytes_resumed = spool_.bytes_resumed();
  m.spool_epochs_resumed = spool_.epochs_resumed();
  return m;
}

uint64_t RegionalNode::epochs_shipped() const {
  MutexLock lock(ship_mu_);
  return epochs_shipped_;
}

uint64_t RegionalNode::snapshot_bytes_shipped() const {
  MutexLock lock(ship_mu_);
  return snapshot_bytes_shipped_;
}

uint64_t RegionalNode::ship_retries() const {
  MutexLock lock(ship_mu_);
  return ship_retries_;
}

uint64_t RegionalNode::duplicate_acks() const {
  MutexLock lock(ship_mu_);
  return duplicate_acks_;
}

size_t RegionalNode::pending_snapshots() const {
  MutexLock lock(ship_mu_);
  return pending_.size();
}

uint64_t RegionalNode::epochs_renumbered() const {
  MutexLock lock(ship_mu_);
  return epochs_renumbered_;
}

uint64_t RegionalNode::next_epoch() const {
  MutexLock lock(ship_mu_);
  return next_epoch_;
}

uint64_t RegionalNode::spool_epochs_resumed() const {
  MutexLock lock(ship_mu_);
  return spool_.epochs_resumed();
}

uint64_t RegionalNode::spool_errors() const {
  MutexLock lock(ship_mu_);
  return spool_errors_;
}

uint64_t RegionalNode::stats_pushes() const {
  MutexLock lock(ship_mu_);
  return stats_pushes_;
}

uint64_t RegionalNode::stats_push_failures() const {
  MutexLock lock(ship_mu_);
  return stats_push_failures_;
}

}  // namespace ldpjs
