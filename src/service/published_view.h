// RCU-style publication of finalized sketch views — the read side of the
// serving tier.
//
// The ingest/merge path (WindowedView's accumulator, FrameServer's shard
// lanes) is write-hot and lock-guarded; estimates used to take those same
// locks and copy-and-finalize k·m lanes per query. Instead, the WRITER now
// builds an immutable finalized snapshot at each epoch boundary (and on any
// dirty finalize) and swaps it into an atomic shared_ptr. A reader grabs
// the pointer — one atomic load, zero copies, zero locks shared with
// ingest — and computes any number of estimates against a view that can
// never change underneath it. Queries scale with cores; a concurrent epoch
// cut simply publishes the *next* view.
//
// Consistency: a published view is internally consistent by construction
// (sequence, epoch identity, and sketch are fields of one immutable object
// reached through one pointer), so an answer always corresponds to exactly
// one publication — a torn view is impossible, not just unlikely. Readers
// may observe a slightly stale view; the PING ingest barrier doubles as
// the republish point for "read your own writes".
#ifndef LDPJS_SERVICE_PUBLISHED_VIEW_H_
#define LDPJS_SERVICE_PUBLISHED_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/ldp_join_sketch.h"

namespace ldpjs {

/// One immutable finalized snapshot. Everything a query needs — the
/// finalized sketch plus the identity of the publication that produced
/// it — lives behind one shared_ptr, so readers can hold it as long as
/// they like while the writer publishes successors.
struct PublishedView {
  PublishedView(uint64_t sequence_in, bool aligned_in, uint64_t epoch_in,
                LdpJoinSketchServer sketch_in)
      : sequence(sequence_in),
        aligned(aligned_in),
        epoch(epoch_in),
        sketch(std::move(sketch_in)) {}

  /// Publication counter, 1-based and strictly increasing per publisher.
  uint64_t sequence;
  /// Windowed views: whether the cross-region frontier is established.
  bool aligned;
  /// The aligned frontier epoch (windowed views; 0 otherwise).
  uint64_t epoch;
  /// Finalized sketch — debias and row transforms already applied.
  LdpJoinSketchServer sketch;

  uint64_t reports() const { return sketch.total_reports(); }
};

/// Single-writer/multi-reader swap cell. Writers call Publish with a
/// finalized sketch (typically at an epoch boundary); readers call
/// Current() — a bare atomic shared_ptr load. Current() is never null once
/// the owner has published its initial (usually empty) view.
class ViewPublisher {
 public:
  /// Wraps `finalized` (must be finalized) in a new immutable view with
  /// the next sequence number and swaps it in. Returns the published view.
  std::shared_ptr<const PublishedView> Publish(LdpJoinSketchServer finalized,
                                               bool aligned, uint64_t epoch);

  /// The latest published view (one atomic load; no locks, no copies).
  std::shared_ptr<const PublishedView> Current() const;

  /// Number of Publish calls so far.
  uint64_t publications() const {
    return sequence_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const PublishedView>> current_;
  std::atomic<uint64_t> sequence_{0};
};

}  // namespace ldpjs

#endif  // LDPJS_SERVICE_PUBLISHED_VIEW_H_
