#include "obs/fleet_stats.h"

#include <algorithm>
#include <cstdio>

namespace ldpjs {

namespace {

// Decode-side allocation caps. A registry holds tens of series; anything
// near these bounds is a corrupt or hostile payload, not a big fleet.
constexpr uint32_t kMaxSeries = 4096;
constexpr uint32_t kMaxNameBytes = 256;
constexpr uint32_t kMaxRegions = 4096;
constexpr uint32_t kMaxCauseBytes = 4096;

void PutString(BinaryWriter& writer, std::string_view text) {
  writer.PutFrame({reinterpret_cast<const uint8_t*>(text.data()),
                   text.size()});
}

Result<std::string> GetString(BinaryReader& reader, uint32_t max_bytes,
                              const char* what) {
  auto frame = reader.GetFrame();
  if (!frame.ok()) return frame.status();
  if (frame->size() > max_bytes) {
    return Status::Corruption(std::string(what) + " name too long");
  }
  return std::string(reinterpret_cast<const char*>(frame->data()),
                     frame->size());
}

void PutNamedValues(
    BinaryWriter& writer,
    const std::vector<std::pair<std::string, uint64_t>>& series) {
  writer.PutU32(static_cast<uint32_t>(series.size()));
  for (const auto& [name, value] : series) {
    PutString(writer, name);
    writer.PutU64(value);
  }
}

Status GetNamedValues(BinaryReader& reader, const char* what,
                      std::vector<std::pair<std::string, uint64_t>>* out) {
  auto count = reader.GetU32();
  if (!count.ok()) return count.status();
  if (*count > kMaxSeries) {
    return Status::Corruption(std::string(what) + " series count too large");
  }
  out->reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto name = GetString(reader, kMaxNameBytes, what);
    if (!name.ok()) return name.status();
    auto value = reader.GetU64();
    if (!value.ok()) return value.status();
    out->emplace_back(std::move(*name), *value);
  }
  return Status::OK();
}

void PutRegistrySnapshot(BinaryWriter& writer,
                         const MetricsRegistry::Snapshot& snap) {
  PutNamedValues(writer, snap.counters);
  PutNamedValues(writer, snap.gauges);
  writer.PutU32(static_cast<uint32_t>(snap.histograms.size()));
  for (const auto& [name, hist] : snap.histograms) {
    PutString(writer, name);
    writer.PutU64(hist.sum);
    // Raw buckets only — count is derived on decode, percentiles are the
    // reader's to compute after merging.
    for (uint64_t bucket : hist.buckets) writer.PutU64(bucket);
  }
}

Status GetRegistrySnapshot(BinaryReader& reader,
                           MetricsRegistry::Snapshot* out) {
  Status status = GetNamedValues(reader, "counter", &out->counters);
  if (!status.ok()) return status;
  status = GetNamedValues(reader, "gauge", &out->gauges);
  if (!status.ok()) return status;
  auto count = reader.GetU32();
  if (!count.ok()) return count.status();
  if (*count > kMaxSeries) {
    return Status::Corruption("histogram series count too large");
  }
  out->histograms.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto name = GetString(reader, kMaxNameBytes, "histogram");
    if (!name.ok()) return name.status();
    HistogramSnapshot hist;
    auto sum = reader.GetU64();
    if (!sum.ok()) return sum.status();
    hist.sum = *sum;
    for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      auto bucket = reader.GetU64();
      if (!bucket.ok()) return bucket.status();
      hist.buckets[b] = *bucket;
      hist.count += *bucket;
    }
    out->histograms.emplace_back(std::move(*name), hist);
  }
  return Status::OK();
}

void PutSnapshotBody(BinaryWriter& writer, const FleetSnapshot& snapshot) {
  writer.PutU32(snapshot.region_id);
  writer.PutU64(snapshot.captured_unix_ns);
  PutRegistrySnapshot(writer, snapshot.stats);
}

Status GetSnapshotBody(BinaryReader& reader, FleetSnapshot* out) {
  auto region = reader.GetU32();
  if (!region.ok()) return region.status();
  out->region_id = *region;
  auto captured = reader.GetU64();
  if (!captured.ok()) return captured.status();
  out->captured_unix_ns = *captured;
  return GetRegistrySnapshot(reader, &out->stats);
}

void PutVerdict(BinaryWriter& writer, const HealthVerdict& verdict) {
  writer.PutU8(static_cast<uint8_t>(verdict.state));
  PutString(writer, verdict.cause);
}

Status GetVerdict(BinaryReader& reader, HealthVerdict* out) {
  auto state = reader.GetU8();
  if (!state.ok()) return state.status();
  if (*state > static_cast<uint8_t>(HealthState::kCritical)) {
    return Status::Corruption("unknown health state");
  }
  out->state = static_cast<HealthState>(*state);
  auto cause = GetString(reader, kMaxCauseBytes, "health cause");
  if (!cause.ok()) return cause.status();
  out->cause = std::move(*cause);
  return Status::OK();
}

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
}

void AppendNamedValuesJson(
    std::string& out, const char* section,
    const std::vector<std::pair<std::string, uint64_t>>& series) {
  out += '"';
  out += section;
  out += "\":{";
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(out, series[i].first);
    out += ':';
    out += std::to_string(series[i].second);
  }
  out += '}';
}

void AppendDouble(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += buf;
}

void AppendRegistryJson(std::string& out,
                        const MetricsRegistry::Snapshot& snap) {
  AppendNamedValuesJson(out, "counters", snap.counters);
  out += ',';
  AppendNamedValuesJson(out, "gauges", snap.gauges);
  out += ",\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i > 0) out += ',';
    const auto& [name, hist] = snap.histograms[i];
    AppendJsonString(out, name);
    out += ":{\"count\":";
    out += std::to_string(hist.count);
    out += ",\"sum\":";
    out += std::to_string(hist.sum);
    out += ",\"mean\":";
    AppendDouble(out, hist.mean());
    out += ",\"p50\":";
    out += std::to_string(hist.Percentile(0.50));
    out += ",\"p90\":";
    out += std::to_string(hist.Percentile(0.90));
    out += ",\"p99\":";
    out += std::to_string(hist.Percentile(0.99));
    out += ",\"p999\":";
    out += std::to_string(hist.Percentile(0.999));
    out += '}';
  }
  out += '}';
}

void AppendVerdictJson(std::string& out, const HealthVerdict& verdict) {
  out += HealthVerdictToJson(verdict);
}

template <typename T>
const T* FindByName(const std::vector<std::pair<std::string, T>>& series,
                    std::string_view name) {
  for (const auto& [key, value] : series) {
    if (key == name) return &value;
  }
  return nullptr;
}

}  // namespace

std::vector<uint8_t> EncodeFleetSnapshot(const FleetSnapshot& snapshot) {
  BinaryWriter writer;
  PutSnapshotBody(writer, snapshot);
  return writer.TakeBuffer();
}

Result<FleetSnapshot> DecodeFleetSnapshot(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  FleetSnapshot snapshot;
  Status status = GetSnapshotBody(reader, &snapshot);
  if (!status.ok()) return status;
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after STATS_PUSH payload");
  }
  return snapshot;
}

void MergeSnapshotInto(MetricsRegistry::Snapshot& into,
                       const MetricsRegistry::Snapshot& from) {
  auto merge_values =
      [](std::vector<std::pair<std::string, uint64_t>>& dst,
         const std::vector<std::pair<std::string, uint64_t>>& src) {
        for (const auto& [name, value] : src) {
          bool found = false;
          for (auto& [dst_name, dst_value] : dst) {
            if (dst_name == name) {
              dst_value += value;
              found = true;
              break;
            }
          }
          if (!found) dst.emplace_back(name, value);
        }
        std::sort(dst.begin(), dst.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
      };
  merge_values(into.counters, from.counters);
  merge_values(into.gauges, from.gauges);
  for (const auto& [name, hist] : from.histograms) {
    bool found = false;
    for (auto& [dst_name, dst_hist] : into.histograms) {
      if (dst_name == name) {
        dst_hist = MergeHistogram(dst_hist, hist);
        found = true;
        break;
      }
    }
    if (!found) into.histograms.emplace_back(name, hist);
  }
  std::sort(into.histograms.begin(), into.histograms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::vector<uint8_t> EncodeFleetView(const FleetView& view) {
  BinaryWriter writer;
  writer.PutU64(view.rendered_unix_ns);
  PutVerdict(writer, view.cluster);
  PutRegistrySnapshot(writer, view.merged);
  writer.PutU32(static_cast<uint32_t>(view.regions.size()));
  for (const FleetRegionView& region : view.regions) {
    PutSnapshotBody(writer, region.snapshot);
    writer.PutU64(region.age_ns);
    PutVerdict(writer, region.health);
  }
  return writer.TakeBuffer();
}

Result<FleetView> DecodeFleetView(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  FleetView view;
  auto rendered = reader.GetU64();
  if (!rendered.ok()) return rendered.status();
  view.rendered_unix_ns = *rendered;
  Status status = GetVerdict(reader, &view.cluster);
  if (!status.ok()) return status;
  status = GetRegistrySnapshot(reader, &view.merged);
  if (!status.ok()) return status;
  auto count = reader.GetU32();
  if (!count.ok()) return count.status();
  if (*count > kMaxRegions) {
    return Status::Corruption("fleet region count too large");
  }
  view.regions.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    FleetRegionView region;
    status = GetSnapshotBody(reader, &region.snapshot);
    if (!status.ok()) return status;
    auto age = reader.GetU64();
    if (!age.ok()) return age.status();
    region.age_ns = *age;
    status = GetVerdict(reader, &region.health);
    if (!status.ok()) return status;
    view.regions.push_back(std::move(region));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after FLEET_STATS payload");
  }
  return view;
}

std::string FleetViewToJson(const FleetView& view) {
  std::string out = "{\"rendered_unix_ns\":";
  out += std::to_string(view.rendered_unix_ns);
  out += ",\"cluster\":";
  AppendVerdictJson(out, view.cluster);
  out += ",\"region_count\":";
  out += std::to_string(view.regions.size());
  out += ",\"merged\":{";
  AppendRegistryJson(out, view.merged);
  out += "},\"regions\":[";
  for (size_t i = 0; i < view.regions.size(); ++i) {
    if (i > 0) out += ',';
    const FleetRegionView& region = view.regions[i];
    out += "{\"region_id\":";
    out += std::to_string(region.snapshot.region_id);
    out += ",\"captured_unix_ns\":";
    out += std::to_string(region.snapshot.captured_unix_ns);
    out += ",\"age_ms\":";
    AppendDouble(out, static_cast<double>(region.age_ns) / 1e6);
    out += ",\"health\":";
    AppendVerdictJson(out, region.health);
    out += ',';
    AppendRegistryJson(out, region.snapshot.stats);
    out += '}';
  }
  out += "]}";
  return out;
}

HistogramSnapshot FleetHistogramByName(const MetricsRegistry::Snapshot& snap,
                                       std::string_view name) {
  const HistogramSnapshot* hist = FindByName(snap.histograms, name);
  return hist != nullptr ? *hist : HistogramSnapshot{};
}

HistogramSnapshot FleetHistogramBySuffix(const MetricsRegistry::Snapshot& snap,
                                         std::string_view suffix) {
  for (const auto& [name, hist] : snap.histograms) {
    if (name.size() >= suffix.size() &&
        std::string_view(name).substr(name.size() - suffix.size()) == suffix) {
      return hist;
    }
  }
  return HistogramSnapshot{};
}

uint64_t FleetGaugeByName(const MetricsRegistry::Snapshot& snap,
                          std::string_view name) {
  const uint64_t* value = FindByName(snap.gauges, name);
  return value != nullptr ? *value : 0;
}

FleetStore::ApplyResult FleetStore::Apply(FleetSnapshot snapshot,
                                          uint64_t now_ns,
                                          const HealthOptions& options) {
  MutexLock lock(mu_);
  Entry& entry = regions_[snapshot.region_id];
  const bool first_push = entry.received_ns == 0;
  entry.snapshot = std::move(snapshot);
  entry.received_ns = now_ns;

  // Frontier lag is relative to the fleet's most advanced region, so every
  // verdict is recomputed against the post-update maximum.
  uint64_t frontier_max = 0;
  for (const auto& [id, other] : regions_) {
    frontier_max = std::max(
        frontier_max,
        FleetGaugeByName(other.snapshot.stats, "net_frontier_epoch"));
  }

  ApplyResult result;
  const HealthVerdict current = EvaluateHealth(
      SignalsFromSnapshot(entry.snapshot.stats, frontier_max, 0), options);
  result.previous.state = entry.last_state;
  result.current = current;
  // A region whose FIRST push is already unhealthy still logs a transition
  // (last_state starts as kOk), which is exactly the behavior we want.
  result.region_changed = first_push ? current.state != HealthState::kOk
                                     : current.state != entry.last_state;
  entry.last_state = current.state;

  HealthState cluster_worst = HealthState::kOk;
  std::string cluster_cause;
  for (const auto& [id, other] : regions_) {
    const uint64_t age =
        now_ns > other.received_ns ? now_ns - other.received_ns : 0;
    const HealthVerdict verdict = EvaluateHealth(
        SignalsFromSnapshot(other.snapshot.stats, frontier_max, age), options);
    if (verdict.state == HealthState::kOk) continue;
    if (static_cast<uint8_t>(verdict.state) >
        static_cast<uint8_t>(cluster_worst)) {
      cluster_worst = verdict.state;
    }
    if (!cluster_cause.empty()) cluster_cause += "; ";
    cluster_cause += "region " + std::to_string(id) + ": " + verdict.cause;
  }
  result.cluster_previous.state = cluster_state_;
  result.cluster_current.state = cluster_worst;
  result.cluster_current.cause = std::move(cluster_cause);
  result.cluster_changed = cluster_worst != cluster_state_;
  cluster_state_ = cluster_worst;
  return result;
}

FleetView FleetStore::View(uint64_t now_ns,
                           const HealthOptions& options) const {
  MutexLock lock(mu_);
  return ViewLocked(now_ns, options);
}

FleetView FleetStore::ViewLocked(uint64_t now_ns,
                                 const HealthOptions& options) const {
  FleetView view;
  view.rendered_unix_ns = now_ns;

  uint64_t frontier_max = 0;
  for (const auto& [id, entry] : regions_) {
    frontier_max = std::max(
        frontier_max,
        FleetGaugeByName(entry.snapshot.stats, "net_frontier_epoch"));
  }

  for (const auto& [id, entry] : regions_) {
    FleetRegionView region;
    region.snapshot = entry.snapshot;
    region.age_ns =
        now_ns > entry.received_ns ? now_ns - entry.received_ns : 0;
    region.health = EvaluateHealth(
        SignalsFromSnapshot(entry.snapshot.stats, frontier_max, region.age_ns),
        options);
    MergeSnapshotInto(view.merged, entry.snapshot.stats);
    if (region.health.state != HealthState::kOk) {
      if (static_cast<uint8_t>(region.health.state) >
          static_cast<uint8_t>(view.cluster.state)) {
        view.cluster.state = region.health.state;
      }
      if (!view.cluster.cause.empty()) view.cluster.cause += "; ";
      view.cluster.cause +=
          "region " + std::to_string(id) + ": " + region.health.cause;
    }
    view.regions.push_back(std::move(region));
  }
  return view;
}

size_t FleetStore::region_count() const {
  MutexLock lock(mu_);
  return regions_.size();
}

}  // namespace ldpjs
