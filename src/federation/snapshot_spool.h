// SnapshotSpool: the regional node's durable write-ahead log of pending
// epoch snapshots.
//
// Why it exists: RegionalNode's pending queue is the only copy of an epoch
// between its cut and the central's EPOCH_PUSH_OK. Without a spool, a
// regional crash in that window silently loses every report the epoch held.
// With spool_dir set, each data-bearing cut is appended (and fsynced) here
// BEFORE it enters the in-memory queue, and a restarted incarnation rebuilds
// its pending queue from the spool — shipping then resumes through the
// central's (region, epoch) dedup, so a crash delays data but never loses
// or duplicates it.
//
// On-disk format (all integers little-endian), one file per region:
//
//   header:  "LJSSPOOL" | u32 version | u32 region_id
//   record:  u32 len | u8 type | payload[len] | u32 crc32c(type+payload)
//
// Record types replay the queue's state machine:
//   kSnapshot  u64 epoch | sketch bytes     — a cut entered the queue
//   kAttempted u64 epoch                    — first wire attempt imminent
//   kShipped   u64 epoch                    — EPOCH_PUSH_OK received
//   kRenumber  u64 old | u64 new            — connect-time epoch sync
//   kTrace     u64 epoch | u64 id | u64 ns  — trace context of the cut
//
// kTrace makes crash-replay observable end to end: the trace id and client
// origin timestamp claimed at the epoch cut are spooled with the epoch, so
// a restarted incarnation ships the replayed epoch as a TRACED push and the
// central's ingest-to-queryable reading still spans the original client
// send — crash recovery included — instead of silently dropping the trace.
//
// kAttempted is fsynced BEFORE the first push of that epoch goes on the
// wire: a push may merge at the central even if the ack (and this process)
// dies, so a restarted incarnation must know the number is frozen — ship
// the SAME (region, epoch) and let the dedup resolve it, never renumber it.
// That ordering is what preserves exactly-once across a crash.
//
// Recovery truncates the file at the first torn or checksum-corrupt record
// (a crash mid-append tears only the tail; everything before it is intact)
// and then compacts: live entries are rewritten to a fresh file which
// atomically replaces the old one, so spool size tracks the pending queue,
// not the region's lifetime.
#ifndef LDPJS_FEDERATION_SNAPSHOT_SPOOL_H_
#define LDPJS_FEDERATION_SNAPSHOT_SPOOL_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ldpjs {

/// One pending epoch recovered from the spool.
struct SpoolEntry {
  uint64_t epoch = 0;
  std::vector<uint8_t> raw_sketch;
  bool attempted = false;  ///< number frozen; retry, don't renumber
  /// Trace context claimed at the cut (0 = untraced). Survives the crash so
  /// the replayed push still ships traced with the original origin.
  uint64_t trace_id = 0;
  uint64_t origin_ns = 0;
};

class SnapshotSpool {
 public:
  SnapshotSpool() = default;
  ~SnapshotSpool();

  SnapshotSpool(const SnapshotSpool&) = delete;
  SnapshotSpool& operator=(const SnapshotSpool&) = delete;

  /// Opens (creating if absent) `dir`/region-<id>.spool, recovers the live
  /// entries into `recovered` (epoch order), truncates any torn tail, and
  /// compacts the file down to the live set. A spool whose header names a
  /// different region is refused — two regions must never share a file.
  Status Open(const std::string& dir, uint32_t region_id,
              std::vector<SpoolEntry>* recovered);

  bool is_open() const { return fd_ >= 0; }

  /// Appends + fsyncs one record. All return the write/sync error if the
  /// disk fails; the caller decides whether to keep shipping from memory.
  Status AppendSnapshot(uint64_t epoch, std::span<const uint8_t> raw_sketch);
  /// Attaches the cut's trace context to an already-appended epoch.
  Status RecordTrace(uint64_t epoch, uint64_t trace_id, uint64_t origin_ns);
  Status MarkAttempted(uint64_t epoch);
  Status MarkShipped(uint64_t epoch);
  Status RecordRenumber(uint64_t old_epoch, uint64_t new_epoch);

  void Close();

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_resumed() const { return bytes_resumed_; }
  uint64_t epochs_resumed() const { return epochs_resumed_; }

 private:
  Status AppendRecord(uint8_t type, std::span<const uint8_t> payload);
  /// Rewrites the file as header + live entries via tmp-file + rename.
  Status Compact(const std::map<uint64_t, SpoolEntry>& live);

  std::string path_;
  int fd_ = -1;
  size_t live_entries_ = 0;  ///< spooled epochs not yet marked shipped
  uint64_t bytes_written_ = 0;
  uint64_t bytes_resumed_ = 0;
  uint64_t epochs_resumed_ = 0;
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_SNAPSHOT_SPOOL_H_
