// Count-Min sketch (Cormode & Muthukrishnan): k rows of m counters, query
// answered by the minimum across rows — a one-sided (over-)estimate.
// Substrate for the non-private JoinSketch-style estimator in
// join_sketch.h, whose heavy-hitter skimming needs a cheap conservative
// frequency oracle.
#ifndef LDPJS_SKETCH_COUNT_MIN_H_
#define LDPJS_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "data/column.h"

namespace ldpjs {

class CountMinSketch {
 public:
  /// k rows, m columns; sketches sharing `seed` use the same bucket hashes.
  CountMinSketch(uint64_t seed, int k, int m);

  /// Adds `weight` occurrences of d (weight >= 0).
  void Update(uint64_t d, double weight = 1.0);

  void UpdateColumn(const Column& column);

  /// min over rows of M[j, h_j(d)]; never underestimates the frequency.
  double FrequencyUpperBound(uint64_t d) const;

  /// Count-Min with conservative deletion of the expected collision mass
  /// n/m per row, then min (a tighter point estimate; can underestimate).
  double FrequencyEstimate(uint64_t d) const;

  /// Items from `candidates` whose upper bound exceeds `threshold`.
  /// Guaranteed to contain every item with true frequency > threshold.
  std::vector<uint64_t> HeavyHitters(const std::vector<uint64_t>& candidates,
                                     double threshold) const;

  int k() const { return k_; }
  int m() const { return m_; }
  double total_weight() const { return total_weight_; }

 private:
  int k_;
  int m_;
  double total_weight_ = 0.0;
  std::vector<BucketHash> buckets_;
  std::vector<double> cells_;  // row-major k x m
};

}  // namespace ldpjs

#endif  // LDPJS_SKETCH_COUNT_MIN_H_
