#include "core/simulation.h"

#include <vector>

#include "common/thread_pool.h"

namespace ldpjs {

namespace {

/// Shards `column` across a thread pool; `perturb(value, rng)` produces one
/// report per user, absorbed into a shard-local server; shard servers are
/// merged in shard order and finalized.
template <typename PerturbFn>
LdpJoinSketchServer RunProtocol(const Column& column,
                                const SketchParams& params, double epsilon,
                                const SimulationOptions& options,
                                const PerturbFn& perturb) {
  ThreadPool pool(options.num_threads);
  const size_t shards = pool.num_threads();
  std::vector<LdpJoinSketchServer> partials(
      shards, LdpJoinSketchServer(params, epsilon));

  pool.ParallelFor(column.size(), [&](size_t shard, size_t begin, size_t end) {
    LdpJoinSketchServer& server = partials[shard];
    for (size_t i = begin; i < end; ++i) {
      Xoshiro256 rng(DeriveStreamSeed(options.run_seed,
                                      static_cast<uint64_t>(i)));
      server.Absorb(perturb(column[i], rng));
    }
  });

  LdpJoinSketchServer server(params, epsilon);
  for (const LdpJoinSketchServer& partial : partials) server.Merge(partial);
  server.Finalize();
  return server;
}

}  // namespace

LdpJoinSketchServer BuildLdpJoinSketch(const Column& column,
                                       const SketchParams& params,
                                       double epsilon,
                                       const SimulationOptions& options) {
  LdpJoinSketchClient client(params, epsilon);
  return RunProtocol(column, params, epsilon, options,
                     [&client](uint64_t value, Xoshiro256& rng) {
                       return client.Perturb(value, rng);
                     });
}

LdpJoinSketchServer BuildFapSketch(
    const Column& column, const SketchParams& params, double epsilon,
    FapMode mode, const std::unordered_set<uint64_t>& frequent_items,
    const SimulationOptions& options) {
  FapClient client(params, epsilon, mode, frequent_items);
  return RunProtocol(column, params, epsilon, options,
                     [&client](uint64_t value, Xoshiro256& rng) {
                       return client.Perturb(value, rng);
                     });
}

}  // namespace ldpjs
